// Package automaton builds the qualification automaton of Ammons & Larus
// (PLDI 1998), §3: an Aho-Corasick keyword recognizer whose keywords are
// the hot Ball-Larus paths with their final recording edge trimmed.
//
// The alphabet is the edge set of the control-flow graph, plus the
// abstract • symbol standing for "any recording edge". Because a
// Ball-Larus path contains no recording edge except its last — which
// trimming removes — Theorem 2 of the paper shows the Aho-Corasick
// failure function is trivial:
//
//	h(q, a) = q•  when a is a recording edge,
//	h(q, a) = qε  otherwise.
//
// Consequently the automaton stores only retrieval-tree (trie) edges; a
// Step that leaves the trie falls back to q• or qε directly.
//
// States are numbered canonically: qε = 0, q• = 1, and trie states in
// breadth-first order with children visited in edge-ID order. Under this
// numbering the running example of the paper reproduces Figure 3 and the
// vertex names of Figure 5 (A0, B1, ..., H14, I17) exactly, via Name.
package automaton

import (
	"fmt"
	"sort"
	"strings"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
)

// State identifies an automaton state.
type State int32

// Distinguished states (Definition 9 names q•).
const (
	// StateEpsilon is qε: no keyword prefix is in progress.
	StateEpsilon State = 0
	// StateDot is q•: a recording edge was just crossed, so a fresh
	// keyword (hot path) may begin here.
	StateDot State = 1
)

// Automaton is the qualification automaton.
type Automaton struct {
	// R is the recording-edge set the keywords were trimmed against.
	R map[cfg.EdgeID]bool
	// trans[q] holds the retrieval-tree edges out of q, keyed by CFG
	// edge. Only trie edges are stored (Theorem 2).
	trans []map[cfg.EdgeID]State
	// accept[q] marks states that complete a trimmed hot path.
	accept []bool
	// depth[q] is the trie depth (qε = 0, q• = 1).
	depth []int32
	// numKeywords counts the distinct trimmed hot paths inserted.
	numKeywords int
}

// New builds the automaton for the given hot paths. Paths must be valid
// Ball-Larus paths of g under R; their final recording edges are trimmed
// here. Duplicate hot paths are tolerated and counted once.
func New(g *cfg.Graph, R map[cfg.EdgeID]bool, hot []bl.Path) (*Automaton, error) {
	a := &Automaton{R: R}
	// Build the trie with provisional numbering, then renumber BFS.
	type node struct {
		children map[cfg.EdgeID]int
		accept   bool
	}
	// node 0 = qε, node 1 = q•. qε has the single •-child q•, which is
	// represented implicitly (• matches any recording edge).
	nodes := []*node{{children: map[cfg.EdgeID]int{}}, {children: map[cfg.EdgeID]int{}}}
	for _, p := range hot {
		if err := p.Validate(g, R); err != nil {
			return nil, fmt.Errorf("automaton: hot path invalid: %w", err)
		}
		trimmed := p.Trimmed()
		cur := 1 // after the leading •
		for _, e := range trimmed.Edges {
			if R[e] {
				return nil, fmt.Errorf("automaton: trimmed path %s contains recording edge %d", trimmed.Key(), e)
			}
			next, ok := nodes[cur].children[e]
			if !ok {
				next = len(nodes)
				nodes = append(nodes, &node{children: map[cfg.EdgeID]int{}})
				nodes[cur].children[e] = next
			}
			cur = next
		}
		if !nodes[cur].accept {
			a.numKeywords++
			nodes[cur].accept = true
		}
	}
	// Canonical breadth-first renumbering, children in edge-ID order.
	renum := make([]State, len(nodes))
	for i := range renum {
		renum[i] = -1
	}
	renum[0], renum[1] = StateEpsilon, StateDot
	order := []int{0, 1}
	a.accept = make([]bool, len(nodes))
	a.depth = make([]int32, len(nodes))
	next := State(2)
	for i := 0; i < len(order); i++ {
		old := order[i]
		edges := make([]cfg.EdgeID, 0, len(nodes[old].children))
		for e := range nodes[old].children {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(x, y int) bool { return edges[x] < edges[y] })
		for _, e := range edges {
			child := nodes[old].children[e]
			renum[child] = next
			next++
			order = append(order, child)
		}
	}
	a.trans = make([]map[cfg.EdgeID]State, len(nodes))
	for old, nd := range nodes {
		q := renum[old]
		m := map[cfg.EdgeID]State{}
		for e, child := range nd.children {
			m[e] = renum[child]
		}
		a.trans[q] = m
		a.accept[q] = nd.accept
	}
	// Depths by BFS over the renumbered trie.
	a.depth[StateEpsilon] = 0
	a.depth[StateDot] = 1
	for i := 1; i < len(order); i++ {
		q := renum[order[i]]
		for _, child := range a.trans[q] {
			a.depth[child] = a.depth[q] + 1
		}
	}
	return a, nil
}

// Step advances the automaton over one CFG edge, applying the trivial
// failure function of Theorem 2 when no trie edge matches.
func (a *Automaton) Step(q State, e cfg.EdgeID) State {
	if t, ok := a.trans[q][e]; ok {
		return t
	}
	if a.R[e] {
		return StateDot
	}
	return StateEpsilon
}

// Start returns the state in which tracing begins at the function's entry
// vertex: qε. The first traversed edge leaves the entry vertex and is
// therefore a recording edge, which moves the automaton to q•.
func (a *Automaton) Start() State { return StateEpsilon }

// NumStates returns the total number of states, including qε and q•.
func (a *Automaton) NumStates() int { return len(a.trans) }

// NumKeywords returns the number of distinct trimmed hot paths.
func (a *Automaton) NumKeywords() int { return a.numKeywords }

// Accepting reports whether q completes a trimmed hot path.
func (a *Automaton) Accepting(q State) bool { return a.accept[q] }

// Depth returns the keyword-prefix length represented by q (counting the
// leading •).
func (a *Automaton) Depth(q State) int { return int(a.depth[q]) }

// Name renders a state the way the paper labels HPG vertices: qε is "ε"
// and trie states are numbered from q0 = q•.
func (a *Automaton) Name(q State) string {
	if q == StateEpsilon {
		return "ε"
	}
	return fmt.Sprintf("%d", q-1)
}

// --- Serialization support -----------------------------------------------

// TransEdge is one retrieval-tree transition in a Snapshot.
type TransEdge struct {
	Edge cfg.EdgeID
	To   State
}

// Snapshot is an exported, order-canonical view of an automaton's
// retrieval tree, used by the persistent artifact cache to serialize
// automata without widening the package's mutating surface. Trans lists
// each state's trie transitions in increasing edge order; R is not part
// of the snapshot because it is owned by the profile the automaton was
// built against (the deserializer supplies it).
type Snapshot struct {
	Trans       [][]TransEdge
	Accept      []bool
	Depth       []int32
	NumKeywords int
}

// Snapshot returns the canonical serializable view of the automaton.
func (a *Automaton) Snapshot() *Snapshot {
	s := &Snapshot{
		Trans:       make([][]TransEdge, len(a.trans)),
		Accept:      append([]bool(nil), a.accept...),
		Depth:       append([]int32(nil), a.depth...),
		NumKeywords: a.numKeywords,
	}
	for q, m := range a.trans {
		ts := make([]TransEdge, 0, len(m))
		for e, to := range m {
			ts = append(ts, TransEdge{Edge: e, To: to})
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i].Edge < ts[j].Edge })
		s.Trans[q] = ts
	}
	return s
}

// FromSnapshot rebuilds an automaton from a snapshot plus the
// recording-edge set R it was built against. Shape invariants are
// validated so a corrupted snapshot yields an error, never a malformed
// automaton: slice lengths must agree, the two distinguished states must
// exist with their fixed depths, and every transition target must be in
// range with a depth one greater than its source (trie property).
func FromSnapshot(R map[cfg.EdgeID]bool, s *Snapshot) (*Automaton, error) {
	n := len(s.Trans)
	if n < 2 || len(s.Accept) != n || len(s.Depth) != n {
		return nil, fmt.Errorf("automaton: snapshot shape mismatch (%d/%d/%d states)",
			n, len(s.Accept), len(s.Depth))
	}
	if s.Depth[StateEpsilon] != 0 || s.Depth[StateDot] != 1 {
		return nil, fmt.Errorf("automaton: snapshot distinguished-state depths %d/%d, want 0/1",
			s.Depth[StateEpsilon], s.Depth[StateDot])
	}
	if s.NumKeywords < 0 || s.NumKeywords > n {
		return nil, fmt.Errorf("automaton: snapshot keyword count %d out of range", s.NumKeywords)
	}
	a := &Automaton{
		R:           R,
		trans:       make([]map[cfg.EdgeID]State, n),
		accept:      append([]bool(nil), s.Accept...),
		depth:       append([]int32(nil), s.Depth...),
		numKeywords: s.NumKeywords,
	}
	for q, ts := range s.Trans {
		m := make(map[cfg.EdgeID]State, len(ts))
		for _, t := range ts {
			if t.To < 2 || int(t.To) >= n {
				return nil, fmt.Errorf("automaton: snapshot transition target %d out of range", t.To)
			}
			if s.Depth[t.To] != s.Depth[q]+1 {
				return nil, fmt.Errorf("automaton: snapshot transition %d->%d breaks the trie depth invariant", q, t.To)
			}
			if _, dup := m[t.Edge]; dup {
				return nil, fmt.Errorf("automaton: snapshot duplicate transition on edge %d from state %d", t.Edge, q)
			}
			m[t.Edge] = t.To
		}
		a.trans[q] = m
	}
	return a, nil
}

// Dot renders the retrieval tree in Graphviz format; edges are labeled
// with the original graph's node names when g is non-nil.
func (a *Automaton) Dot(g *cfg.Graph) string {
	var b strings.Builder
	b.WriteString("digraph trie {\n  node [shape=circle];\n")
	for q := range a.trans {
		shape := ""
		if a.accept[q] {
			shape = ", shape=doublecircle"
		}
		fmt.Fprintf(&b, "  q%d [label=\"%s\"%s];\n", q, a.Name(State(q)), shape)
	}
	fmt.Fprintf(&b, "  q%d -> q%d [label=\"•\"];\n", StateEpsilon, StateDot)
	for q, m := range a.trans {
		edges := make([]cfg.EdgeID, 0, len(m))
		for e := range m {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(x, y int) bool { return edges[x] < edges[y] })
		for _, e := range edges {
			label := fmt.Sprintf("e%d", e)
			if g != nil {
				ed := g.Edge(e)
				label = fmt.Sprintf("(%s,%s)", nodeName(g, ed.From), nodeName(g, ed.To))
			}
			fmt.Fprintf(&b, "  q%d -> q%d [label=\"%s\"];\n", q, m[e], label)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func nodeName(g *cfg.Graph, n cfg.NodeID) string {
	nd := g.Node(n)
	if nd.Name != "" {
		return nd.Name
	}
	return fmt.Sprintf("n%d", n)
}
