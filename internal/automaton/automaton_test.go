package automaton_test

import (
	"strings"
	"testing"

	. "pathflow/internal/automaton"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/paperex"
)

func buildExample(t *testing.T) (*cfg.Graph, map[string]cfg.EdgeID, *Automaton) {
	t.Helper()
	f, _, edges := paperex.Build()
	R := paperex.Recording(edges)
	ps := paperex.Paths(edges)
	a, err := New(f.G, R, ps[:])
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f.G, edges, a
}

func TestExampleTrieShape(t *testing.T) {
	_, _, a := buildExample(t)
	// Figure 3: qε, q• (= q0) and 17 proper trie states: 19 in total.
	if got := a.NumStates(); got != 19 {
		t.Errorf("NumStates = %d, want 19", got)
	}
	if a.NumKeywords() != 4 {
		t.Errorf("NumKeywords = %d, want 4", a.NumKeywords())
	}
	if a.Start() != StateEpsilon {
		t.Errorf("Start = %d, want qε", a.Start())
	}
	if a.Name(StateEpsilon) != "ε" || a.Name(StateDot) != "0" {
		t.Errorf("names: ε=%q dot=%q", a.Name(StateEpsilon), a.Name(StateDot))
	}
}

// walk drives the automaton from q• along the named edges.
func walk(a *Automaton, edges map[string]cfg.EdgeID, names ...string) State {
	q := StateDot
	for _, n := range names {
		q = a.Step(q, edges[n])
	}
	return q
}

func TestExampleStateNumbersMatchFigure5(t *testing.T) {
	_, edges, a := buildExample(t)
	// The paper's HPG vertex labels imply these state numbers (via the
	// canonical BFS numbering with children in edge order).
	cases := []struct {
		want string
		path []string
	}{
		{"1", []string{"A->B"}},                                          // B1
		{"2", []string{"B->D"}},                                          // D2
		{"3", []string{"A->B", "B->C"}},                                  // C3
		{"4", []string{"A->B", "B->D"}},                                  // D4
		{"5", []string{"B->D", "D->E"}},                                  // E5
		{"6", []string{"A->B", "B->C", "C->E"}},                          // E6
		{"7", []string{"A->B", "B->D", "D->E"}},                          // E7
		{"8", []string{"B->D", "D->E", "E->F"}},                          // F8
		{"9", []string{"B->D", "D->E", "E->G"}},                          // G9
		{"10", []string{"A->B", "B->C", "C->E", "E->F"}},                 // F10
		{"11", []string{"A->B", "B->D", "D->E", "E->F"}},                 // F11
		{"12", []string{"B->D", "D->E", "E->F", "F->H"}},                 // H12
		{"13", []string{"B->D", "D->E", "E->G", "G->H"}},                 // H13
		{"14", []string{"A->B", "B->C", "C->E", "E->F", "F->H"}},         // H14
		{"15", []string{"A->B", "B->D", "D->E", "E->F", "F->H"}},         // H15
		{"16", []string{"B->D", "D->E", "E->F", "F->H", "H->I"}},         // I16
		{"17", []string{"A->B", "B->C", "C->E", "E->F", "F->H", "H->I"}}, // I17
	}
	for _, tc := range cases {
		q := walk(a, edges, tc.path...)
		if got := a.Name(q); got != tc.want {
			t.Errorf("state after %v = %s, want %s", tc.path, got, tc.want)
		}
		if got := a.Depth(q); got != len(tc.path)+1 {
			t.Errorf("depth after %v = %d, want %d", tc.path, got, len(tc.path)+1)
		}
	}
}

func TestTrivialFailureFunction(t *testing.T) {
	_, edges, a := buildExample(t)
	// From deep in the trie, a non-matching non-recording edge resets to
	// qε (Theorem 2).
	q := walk(a, edges, "A->B", "B->C", "C->E")
	if got := a.Step(q, edges["E->G"]); got != StateEpsilon {
		t.Errorf("failure on non-recording edge -> %d, want qε", got)
	}
	// Any recording edge resets to q•, from anywhere.
	for _, from := range []State{StateEpsilon, StateDot, q} {
		for _, r := range []string{"Entry->A", "H->B", "I->Exit"} {
			if got := a.Step(from, edges[r]); got != StateDot {
				t.Errorf("Step(%d, %s) = %d, want q•", from, r, got)
			}
		}
	}
	// From qε, everything non-recording stays in qε.
	for _, e := range []string{"A->B", "B->C", "E->F", "H->I"} {
		if got := a.Step(StateEpsilon, edges[e]); got != StateEpsilon {
			t.Errorf("Step(qε, %s) = %d, want qε", e, got)
		}
	}
}

func TestAcceptingStates(t *testing.T) {
	_, edges, a := buildExample(t)
	accepts := 0
	for q := 0; q < a.NumStates(); q++ {
		if a.Accepting(State(q)) {
			accepts++
		}
	}
	if accepts != 4 {
		t.Errorf("accepting states = %d, want 4", accepts)
	}
	// k2's trimmed form ends at H15.
	if q := walk(a, edges, "A->B", "B->D", "D->E", "E->F", "F->H"); !a.Accepting(q) {
		t.Error("H15 state should accept (keyword k2)")
	}
	// An interior state does not accept.
	if q := walk(a, edges, "A->B", "B->D"); a.Accepting(q) {
		t.Error("D4 state should not accept")
	}
}

func TestAutomatonRecognizesExactlyHotPaths(t *testing.T) {
	g, edges, a := buildExample(t)
	R := paperex.Recording(edges)
	// Drive the automaton along each profile path (after a recording
	// edge) and check the final pre-recording state accepts.
	for i, p := range paperex.Paths(edges) {
		q := StateDot
		for _, e := range p.Trimmed().Edges {
			q = a.Step(q, e)
		}
		if !a.Accepting(q) {
			t.Errorf("hot path %d not accepted", i+1)
		}
	}
	// A cold path must not be accepted: [•,A,B,C,E,G,H,(B)].
	cold := bl.Path{Edges: []cfg.EdgeID{
		edges["A->B"], edges["B->C"], edges["C->E"], edges["E->G"], edges["G->H"], edges["H->B"],
	}}
	if err := cold.Validate(g, R); err != nil {
		t.Fatalf("cold path invalid: %v", err)
	}
	q := StateDot
	for _, e := range cold.Trimmed().Edges {
		q = a.Step(q, e)
	}
	if a.Accepting(q) {
		t.Error("cold path accepted")
	}
}

func TestNewRejectsBadPaths(t *testing.T) {
	f, _, edges := paperex.Build()
	R := paperex.Recording(edges)
	bad := bl.Path{Edges: []cfg.EdgeID{edges["A->B"]}} // no final recording edge
	if _, err := New(f.G, R, []bl.Path{bad}); err == nil {
		t.Error("New accepted an invalid hot path")
	}
}

func TestEmptyHotSet(t *testing.T) {
	f, _, edges := paperex.Build()
	R := paperex.Recording(edges)
	a, err := New(f.G, R, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStates() != 2 {
		t.Errorf("NumStates = %d, want 2 (qε and q•)", a.NumStates())
	}
	// With no keywords the automaton only distinguishes "just crossed a
	// recording edge" from "did not".
	if got := a.Step(StateDot, edges["A->B"]); got != StateEpsilon {
		t.Errorf("Step(q•, A->B) = %d, want qε", got)
	}
}

func TestDuplicateHotPathsCountedOnce(t *testing.T) {
	f, _, edges := paperex.Build()
	R := paperex.Recording(edges)
	p := paperex.Paths(edges)[0]
	a, err := New(f.G, R, []bl.Path{p, p, p})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumKeywords() != 1 {
		t.Errorf("NumKeywords = %d, want 1", a.NumKeywords())
	}
}

func TestDot(t *testing.T) {
	g, _, a := buildExample(t)
	dot := a.Dot(g)
	for _, want := range []string{"digraph trie", "label=\"•\"", "(A,B)", "doublecircle"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q", want)
		}
	}
}

// TestSingleEdgeHotPath covers hot paths whose trimmed form is just •,
// which occur when a recording edge leaves a recording-edge target.
func TestSingleEdgeHotPath(t *testing.T) {
	// Build  entry -> a -> exit  where a->exit is the only path.
	g := cfg.New("tiny")
	na := g.AddNode("a")
	g.Node(na).Kind = cfg.TermReturn
	e1 := g.AddEdge(g.Entry, na)
	e2 := g.AddEdge(na, g.Exit)
	if err := g.Validate(0); err != nil {
		t.Fatal(err)
	}
	R := map[cfg.EdgeID]bool{e1: true, e2: true}
	p := bl.Path{Edges: []cfg.EdgeID{e2}}
	if err := p.Validate(g, R); err != nil {
		t.Fatal(err)
	}
	a, err := New(g, R, []bl.Path{p})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStates() != 2 {
		t.Errorf("NumStates = %d, want 2", a.NumStates())
	}
	if !a.Accepting(StateDot) {
		t.Error("q• should accept the empty keyword")
	}
}
