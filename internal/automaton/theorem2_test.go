package automaton_test

import (
	"testing"

	"pathflow/internal/automaton"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/paperex"
	"pathflow/internal/profile"
	"pathflow/internal/progen"
)

// Theorem 2 of Ammons & Larus says the Aho-Corasick failure function of
// the qualification automaton is trivial: because every keyword is a
// trimmed hot path — a leading • followed by non-recording edges — no
// proper suffix of a keyword prefix is itself a nonempty keyword prefix,
// so h(q, a) = q• when a is a recording edge and qε otherwise. The
// implementation banks on this by storing only retrieval-tree edges.
//
// This file checks the theorem from first principles: it rebuilds the
// textbook AC failure function over the automaton's retrieval tree
// (making no triviality assumption) and asserts that (a) every computed
// failure link lands on qε, and (b) the textbook full transition
// function δ agrees with Step on every (state, edge) pair.

// dotSym is the trie symbol standing for "any recording edge".
const dotSym = int64(-1)

// textbookAC is a generic Aho-Corasick closure over a retrieval tree.
type textbookAC struct {
	gotoFn []map[int64]automaton.State
	fail   []automaton.State
}

// newTextbookAC computes goto/failure the standard way (Aho & Corasick
// 1975, Algorithms 2–3): BFS from the root; a state's failure is found
// by walking its parent's failure chain until a goto on the same symbol
// exists.
func newTextbookAC(a *automaton.Automaton) *textbookAC {
	s := a.Snapshot()
	n := len(s.Trans)
	ac := &textbookAC{
		gotoFn: make([]map[int64]automaton.State, n),
		fail:   make([]automaton.State, n),
	}
	for q, ts := range s.Trans {
		m := map[int64]automaton.State{}
		for _, t := range ts {
			m[int64(t.Edge)] = t.To
		}
		ac.gotoFn[q] = m
	}
	// qε's implicit •-edge to q•.
	ac.gotoFn[automaton.StateEpsilon][dotSym] = automaton.StateDot

	// BFS in depth order (canonical state numbering is breadth-first, so
	// ascending state ID is a valid BFS order).
	ac.fail[automaton.StateEpsilon] = automaton.StateEpsilon
	for q := automaton.State(0); int(q) < n; q++ {
		for sym, child := range ac.gotoFn[q] {
			if q == automaton.StateEpsilon {
				ac.fail[child] = automaton.StateEpsilon
				continue
			}
			f := ac.fail[q]
			for {
				if t, ok := ac.gotoFn[f][sym]; ok {
					ac.fail[child] = t
					break
				}
				if f == automaton.StateEpsilon {
					ac.fail[child] = automaton.StateEpsilon
					break
				}
				f = ac.fail[f]
			}
		}
	}
	return ac
}

// delta is the textbook full transition function: follow failure links
// until a goto is defined; undefined at the root stays at the root.
func (ac *textbookAC) delta(q automaton.State, sym int64) automaton.State {
	for {
		if t, ok := ac.gotoFn[q][sym]; ok {
			return t
		}
		if q == automaton.StateEpsilon {
			return automaton.StateEpsilon
		}
		q = ac.fail[q]
	}
}

// checkTheorem2 asserts both halves of the theorem for one automaton.
func checkTheorem2(t *testing.T, label string, g *cfg.Graph, R map[cfg.EdgeID]bool, a *automaton.Automaton) {
	t.Helper()
	ac := newTextbookAC(a)

	// (a) Every failure link is trivial: no state falls back to a deeper
	// keyword prefix.
	for q := automaton.State(1); int(q) < a.NumStates(); q++ {
		if ac.fail[q] != automaton.StateEpsilon {
			t.Errorf("%s: textbook failure of state %d is %d, want qε (Theorem 2 violated)",
				label, q, ac.fail[q])
		}
	}

	// (b) The stored-trie Step equals the textbook δ on every pair.
	for q := automaton.State(0); int(q) < a.NumStates(); q++ {
		for e := 0; e < g.NumEdges(); e++ {
			eid := cfg.EdgeID(e)
			sym := int64(eid)
			if R[eid] {
				sym = dotSym
			}
			if got, want := a.Step(q, eid), ac.delta(q, sym); got != want {
				t.Errorf("%s: Step(%d, e%d) = %d, textbook δ = %d", label, q, e, got, want)
			}
		}
	}
}

// TestTheorem2PaperExample pins the property on the paper's running
// example (Figure 3's automaton).
func TestTheorem2PaperExample(t *testing.T) {
	fn, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	paths := paperex.Paths(edges)
	a, err := automaton.New(fn.G, pr.R, paths[:])
	if err != nil {
		t.Fatal(err)
	}
	checkTheorem2(t, "paperex", fn.G, pr.R, a)
}

// TestTheorem2RandomPrograms is the property test proper: hot sets of
// every function of many generated programs, across coverage levels,
// all satisfy the trivial-failure characterization.
func TestTheorem2RandomPrograms(t *testing.T) {
	checked := 0
	for seed := uint64(1); seed <= 40; seed++ {
		src := progen.Generate(progen.DefaultConfig(seed))
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		vals := make([]ir.Value, 64)
		x := seed*0x9e3779b97f4a7c15 + 1
		for i := range vals {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			vals[i] = ir.Value(x & 0xffff)
		}
		train, _, err := bl.ProfileProgram(prog, interp.Options{
			Args:     []ir.Value{3, 7, 11},
			Input:    &interp.SliceInput{Values: vals},
			MaxSteps: 2_000_000,
		})
		if err != nil {
			t.Fatalf("seed %d: training run: %v", seed, err)
		}
		for _, name := range prog.Order {
			fn := prog.Funcs[name]
			pr := train.Funcs[name]
			if pr == nil {
				continue
			}
			for _, ca := range []float64{0.5, 0.97, 1.0} {
				hot := profile.SelectHot(pr, fn.G, ca)
				if len(hot) == 0 {
					continue
				}
				a, err := automaton.New(fn.G, pr.R, hot)
				if err != nil {
					t.Fatalf("seed %d %s ca=%v: %v", seed, name, ca, err)
				}
				checkTheorem2(t, name, fn.G, pr.R, a)
				checked++
			}
		}
	}
	if checked < 50 {
		t.Fatalf("property exercised only %d automata; generator or selection broke", checked)
	}
}
