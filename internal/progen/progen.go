// Package progen generates random, terminating mini-language programs for
// differential and property-based testing: every random program must
// profile consistently under both Ball-Larus profilers, trace to an
// execution-equivalent HPG, reduce to an execution-equivalent rHPG, and
// optimize to an observationally identical program. Loops are generated
// in a canonical bounded form and the call graph is kept acyclic, so
// every generated program terminates.
package progen

import (
	"fmt"
	"strings"
)

// Config bounds the generator.
type Config struct {
	Seed uint64
	// Funcs is the number of functions besides main.
	Funcs int
	// MaxStmts bounds statements per block; MaxDepth bounds nesting.
	MaxStmts int
	MaxDepth int
	// MaxVars bounds the live scalar variables per function.
	MaxVars int
	// Correlated is the percentage (0–100) of generated if statements
	// that take the correlated form instead: a pure condition over an
	// existing variable, re-tested inside each leg of its own branch
	// with the tested variable unmodified in between. On every path
	// reaching such an inner branch the predicate's truth is already
	// decided, so one inner leg is statically infeasible — the pattern
	// internal/feasible's branch-correlation detector proves, which is
	// what FuzzFeasibleSoundness exercises. Zero (the default) leaves
	// the generator's output unchanged.
	Correlated int
}

// DefaultConfig returns moderate bounds.
func DefaultConfig(seed uint64) Config {
	return Config{Seed: seed, Funcs: 2, MaxStmts: 6, MaxDepth: 3, MaxVars: 6}
}

type gen struct {
	cfg     Config
	rng     splitmix
	b       strings.Builder
	funcs   []string // defined functions, callable by later ones
	arities map[string]int
	loopN   int
	// inLoop suppresses calls inside loop bodies: loops may nest and
	// functions may call functions, but never both multiplicatively, so
	// every generated program runs in a small bounded number of blocks.
	inLoop bool
}

type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *gen) intn(n int) int { return int(g.rng.next() % uint64(n)) }

// Generate produces the source text of a random program.
func Generate(cfg Config) string {
	if cfg.MaxStmts <= 0 {
		cfg.MaxStmts = 4
	}
	if cfg.MaxVars <= 1 {
		cfg.MaxVars = 3
	}
	g := &gen{cfg: cfg, rng: splitmix(cfg.Seed), arities: map[string]int{}}
	for i := 0; i < cfg.Funcs; i++ {
		g.genFunc(fmt.Sprintf("f%d", i))
	}
	g.genMain()
	return g.b.String()
}

func (g *gen) genFunc(name string) {
	arity := g.intn(3)
	params := make([]string, arity)
	vars := []string{}
	for i := range params {
		params[i] = fmt.Sprintf("p%d", i)
		vars = append(vars, params[i])
	}
	fmt.Fprintf(&g.b, "func %s(%s) {\n", name, strings.Join(params, ", "))
	vars = g.genBlock(1, vars, g.cfg.MaxDepth)
	fmt.Fprintf(&g.b, "\treturn %s;\n}\n", g.expr(vars, 2))
	g.funcs = append(g.funcs, name)
	g.arities[name] = arity
}

func (g *gen) genMain() {
	g.b.WriteString("func main() {\n")
	vars := g.genBlock(1, nil, g.cfg.MaxDepth)
	if len(vars) == 0 {
		g.b.WriteString("\tx0 = 1;\n")
		vars = []string{"x0"}
	}
	for _, v := range vars {
		fmt.Fprintf(&g.b, "\tprint(%s);\n", v)
	}
	g.b.WriteString("}\n")
}

// genBlock emits statements at the given indent, returning the variables
// in scope afterwards.
func (g *gen) genBlock(indent int, vars []string, depth int) []string {
	n := 1 + g.intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		vars = g.genStmt(indent, vars, depth)
	}
	return vars
}

func (g *gen) genStmt(indent int, vars []string, depth int) []string {
	pad := strings.Repeat("\t", indent)
	kind := g.intn(10)
	switch {
	case kind < 5 || depth == 0 || len(vars) == 0:
		// Assignment: pick an existing variable or declare a new one.
		var name string
		if len(vars) > 0 && (g.intn(2) == 0 || len(vars) >= g.cfg.MaxVars) {
			name = vars[g.intn(len(vars))]
		} else {
			name = fmt.Sprintf("x%d", len(vars))
			vars = append(vars, name)
		}
		fmt.Fprintf(&g.b, "%s%s = %s;\n", pad, name, g.expr(vars, 3))
		return vars
	case kind < 8:
		if g.cfg.Correlated > 0 && g.intn(100) < g.cfg.Correlated {
			return g.genCorrelated(indent, vars, depth)
		}
		// if / if-else. Branch-local declarations don't dominate uses
		// after the join, so only pre-existing variables stay in scope.
		fmt.Fprintf(&g.b, "%sif (%s) {\n", pad, g.expr(vars, 2))
		g.assignExisting(indent+1, vars)
		g.genBlock(indent+1, vars, depth-1)
		if g.intn(2) == 0 {
			fmt.Fprintf(&g.b, "%s} else {\n", pad)
			g.genBlock(indent+1, vars, depth-1)
		}
		fmt.Fprintf(&g.b, "%s}\n", pad)
		return vars
	default:
		// Canonical bounded loop; the counter is reserved.
		c := fmt.Sprintf("c%d", g.loopN)
		g.loopN++
		bound := 2 + g.intn(6)
		fmt.Fprintf(&g.b, "%s%s = 0;\n", pad, c)
		fmt.Fprintf(&g.b, "%swhile (%s < %d) {\n", pad, c, bound)
		wasInLoop := g.inLoop
		g.inLoop = true
		g.genBlock(indent+1, vars, depth-1)
		g.inLoop = wasInLoop
		fmt.Fprintf(&g.b, "%s\t%s = %s + 1;\n", pad, c, c)
		fmt.Fprintf(&g.b, "%s}\n", pad)
		return vars
	}
}

// genCorrelated emits the correlated branch form (see Config.Correlated):
// a pure condition over an existing variable, tested and then re-tested
// inside each leg with the variable unmodified in between, so exactly
// one inner leg per outer leg is statically infeasible.
func (g *gen) genCorrelated(indent int, vars []string, depth int) []string {
	pad := strings.Repeat("\t", indent)
	if len(vars) == 0 {
		name := fmt.Sprintf("x%d", len(vars))
		vars = append(vars, name)
		fmt.Fprintf(&g.b, "%s%s = %d;\n", pad, name, g.intn(100))
	}
	v := vars[g.intn(len(vars))]
	var cond string
	switch g.intn(3) {
	case 0:
		cond = fmt.Sprintf("%s < %d", v, g.intn(100))
	case 1:
		cond = fmt.Sprintf("%s == %d", v, g.intn(100))
	default:
		cond = v
	}
	leg := func() {
		ipad := pad + "\t"
		fmt.Fprintf(&g.b, "%sif (%s) {\n", ipad, cond)
		g.assignExisting(indent+2, vars)
		fmt.Fprintf(&g.b, "%s} else {\n", ipad)
		g.assignExisting(indent+2, vars)
		fmt.Fprintf(&g.b, "%s}\n", ipad)
	}
	fmt.Fprintf(&g.b, "%sif (%s) {\n", pad, cond)
	leg()
	fmt.Fprintf(&g.b, "%s} else {\n", pad)
	leg()
	fmt.Fprintf(&g.b, "%s}\n", pad)
	return vars
}

// assignExisting emits an assignment to an existing variable (used inside
// branches so the variable set stays consistent across join points).
func (g *gen) assignExisting(indent int, vars []string) {
	if len(vars) == 0 {
		return
	}
	pad := strings.Repeat("\t", indent)
	name := vars[g.intn(len(vars))]
	fmt.Fprintf(&g.b, "%s%s = %s;\n", pad, name, g.expr(vars, 2))
}

var binops = []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
	"==", "!=", "<", "<=", ">", ">=", "&&", "||"}

func (g *gen) expr(vars []string, depth int) string {
	if depth == 0 || g.intn(3) == 0 {
		return g.atom(vars)
	}
	switch g.intn(6) {
	case 0:
		return fmt.Sprintf("(-%s)", g.expr(vars, depth-1))
	case 1:
		return fmt.Sprintf("(!%s)", g.expr(vars, depth-1))
	case 2:
		if len(g.funcs) > 0 && !g.inLoop {
			name := g.funcs[g.intn(len(g.funcs))]
			args := make([]string, g.arities[name])
			for i := range args {
				args[i] = g.expr(vars, depth-1)
			}
			return fmt.Sprintf("%s(%s)", name, strings.Join(args, ", "))
		}
		fallthrough
	default:
		op := binops[g.intn(len(binops))]
		l := g.expr(vars, depth-1)
		r := g.expr(vars, depth-1)
		// Shift amounts are masked by the IR, but keep them small so
		// values stay comparable across graphs.
		if op == "<<" || op == ">>" {
			r = fmt.Sprintf("(%s %% 8)", r)
		}
		return fmt.Sprintf("(%s %s %s)", l, op, r)
	}
}

func (g *gen) atom(vars []string) string {
	switch g.intn(5) {
	case 0:
		return fmt.Sprintf("%d", g.intn(100))
	case 1:
		return "input()"
	case 2:
		return fmt.Sprintf("arg(%d)", g.intn(3))
	default:
		if len(vars) == 0 {
			return fmt.Sprintf("%d", g.intn(100))
		}
		return vars[g.intn(len(vars))]
	}
}
