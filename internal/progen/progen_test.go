package progen_test

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/core"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/opt"
	. "pathflow/internal/progen"
)

const numRandomPrograms = 60

func inputFor(seed int64) *interp.SliceInput {
	vals := make([]ir.Value, 64)
	x := uint64(seed)*0x9e3779b97f4a7c15 + 1
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = ir.Value(x & 0xffff)
	}
	return &interp.SliceInput{Values: vals}
}

func compileRandom(t *testing.T, seed uint64) *cfg.Program {
	t.Helper()
	src := Generate(DefaultConfig(seed))
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("seed %d: compile failed: %v\nsource:\n%s", seed, err, src)
	}
	return prog
}

func runProg(t *testing.T, prog *cfg.Program, seed uint64) *interp.Result {
	t.Helper()
	res, err := interp.Run(prog, interp.Options{
		Args:          []ir.Value{3, 7, 11},
		Input:         inputFor(int64(seed)),
		CollectOutput: true,
		MaxSteps:      2_000_000,
	})
	if err != nil {
		t.Fatalf("seed %d: run failed: %v", seed, err)
	}
	return res
}

// TestRandomProgramsCompileAndTerminate is the generator's basic
// guarantee.
func TestRandomProgramsCompileAndTerminate(t *testing.T) {
	for seed := uint64(1); seed <= numRandomPrograms; seed++ {
		prog := compileRandom(t, seed)
		runProg(t, prog, seed)
	}
}

// TestProfilersAgreeOnRandomPrograms cross-checks the direct tracker
// against the Ball-Larus instrumentation scheme on every function of
// every random program.
func TestProfilersAgreeOnRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= numRandomPrograms; seed++ {
		prog := compileRandom(t, seed)
		trackers := map[string]*bl.Tracker{}
		instrs := map[string]*bl.Instrumented{}
		for name, fn := range prog.Funcs {
			R := bl.RecordingEdges(fn.G)
			trackers[name] = bl.NewTracker(fn, R)
			ip, err := bl.NewInstrumented(fn, R)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			instrs[name] = ip
		}
		_, err := interp.Run(prog, interp.Options{
			Args:     []ir.Value{3, 7, 11},
			Input:    inputFor(int64(seed)),
			MaxSteps: 2_000_000,
			OnEnter:  func(fn *cfg.Func) { trackers[fn.Name].Enter(); instrs[fn.Name].Enter() },
			OnEdge:   func(fn *cfg.Func, e cfg.EdgeID) { trackers[fn.Name].Edge(e); instrs[fn.Name].Edge(e) },
			OnExit:   func(fn *cfg.Func) { trackers[fn.Name].Exit(); instrs[fn.Name].Exit() },
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for name := range prog.Funcs {
			want := trackers[name].Profile()
			got, err := instrs[name].Profile()
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if !got.Equal(want) {
				t.Errorf("seed %d: profilers disagree on %s", seed, name)
			}
			if err := want.Validate(prog.Funcs[name].G); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestPipelinePreservesSemantics is the system's central differential
// property: for random programs, the HPG, the rHPG and the folded
// (optimized) program all behave exactly like the original.
func TestPipelinePreservesSemantics(t *testing.T) {
	for seed := uint64(1); seed <= numRandomPrograms; seed++ {
		prog := compileRandom(t, seed)
		want := runProg(t, prog, seed)

		train, _, err := bl.ProfileProgram(prog, interp.Options{
			Args:     []ir.Value{3, 7, 11},
			Input:    inputFor(int64(seed)),
			MaxSteps: 2_000_000,
		})
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		for _, ca := range []float64{0.5, 1.0} {
			res, err := core.AnalyzeProgram(prog, train, core.Options{CA: ca, CR: 0.95})
			if err != nil {
				t.Fatalf("seed %d ca=%v: analyze: %v", seed, ca, err)
			}
			// rHPG equivalence.
			finalProg := cfg.NewProgram()
			for _, name := range prog.Order {
				finalProg.Add(res.Funcs[name].FinalFunc())
			}
			got := runProg(t, finalProg, seed)
			if !reflect.DeepEqual(got.Output, want.Output) || got.Ret != want.Ret {
				t.Fatalf("seed %d ca=%v: rHPG diverged\nwant %v\ngot  %v", seed, ca, want.Output, got.Output)
			}
			if got.DynInstrs != want.DynInstrs {
				t.Fatalf("seed %d ca=%v: rHPG executed %d instrs, want %d",
					seed, ca, got.DynInstrs, want.DynInstrs)
			}
			// HPG equivalence (where tracing ran).
			hpgProg := cfg.NewProgram()
			for _, name := range prog.Order {
				fr := res.Funcs[name]
				if fr.Qualified() {
					hpgProg.Add(fr.HPG.Func())
				} else {
					hpgProg.Add(fr.Fn)
				}
			}
			got = runProg(t, hpgProg, seed)
			if !reflect.DeepEqual(got.Output, want.Output) {
				t.Fatalf("seed %d ca=%v: HPG diverged", seed, ca)
			}
			// Folded program equivalence — with every optimizer pass
			// enabled, so interval folds and dead-store deletion get
			// differential soundness coverage on random programs too.
			optProg, _ := res.OptimizedProgram(opt.PassesAll)
			got = runProg(t, optProg, seed)
			if !reflect.DeepEqual(got.Output, want.Output) {
				t.Fatalf("seed %d ca=%v: optimized program diverged\nwant %v\ngot  %v",
					seed, ca, want.Output, got.Output)
			}
		}
		// Baseline (all passes on the original graphs) equivalence.
		baseProg, _ := core.BaselineProgram(prog, opt.PassesAll)
		got := runProg(t, baseProg, seed)
		if !reflect.DeepEqual(got.Output, want.Output) {
			t.Fatalf("seed %d: baseline-folded program diverged", seed)
		}
	}
}

// TestConstPropSoundOnRandomPrograms checks every Wegman-Zadek claim
// against actual execution: if the solution says register v holds
// constant k at node n's entry, every dynamic entry to n must observe k.
func TestConstPropSoundOnRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= numRandomPrograms; seed++ {
		prog := compileRandom(t, seed)
		sols := map[string]*constprop.Result{}
		for name, fn := range prog.Funcs {
			sols[name] = constprop.Analyze(fn.G, fn.NumVars(), true)
		}
		var violation error
		_, err := interp.Run(prog, interp.Options{
			Args:     []ir.Value{3, 7, 11},
			Input:    inputFor(int64(seed)),
			MaxSteps: 2_000_000,
			OnBlockEnv: func(fn *cfg.Func, n cfg.NodeID, regs []ir.Value) {
				if violation != nil {
					return
				}
				sol := sols[fn.Name]
				if !sol.Reached(n) {
					violation = fmt.Errorf("%s: node %d executed but analysis says unreachable", fn.Name, n)
					return
				}
				env := sol.EnvAt(n)
				for v, val := range env {
					if val.Kind == constprop.Const && regs[v] != val.K {
						violation = fmt.Errorf("%s node %d: analysis says v%d=%d, execution has %d",
							fn.Name, n, v, val.K, regs[v])
						return
					}
				}
			},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if violation != nil {
			t.Fatalf("seed %d: unsound constant propagation: %v", seed, violation)
		}
	}
}

// TestQualifiedConstPropSoundOnHPG repeats the soundness check on the
// traced graph, where the qualified analysis makes sharper claims.
func TestQualifiedConstPropSoundOnHPG(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		prog := compileRandom(t, seed)
		train, _, err := bl.ProfileProgram(prog, interp.Options{
			Args:     []ir.Value{3, 7, 11},
			Input:    inputFor(int64(seed)),
			MaxSteps: 2_000_000,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := core.AnalyzeProgram(prog, train, core.Options{CA: 1.0, CR: 0.95})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		finalProg := cfg.NewProgram()
		sols := map[string]*constprop.Result{}
		for _, name := range prog.Order {
			fr := res.Funcs[name]
			finalProg.Add(fr.FinalFunc())
			sols[name] = fr.FinalSol()
		}
		var violation error
		_, err = interp.Run(finalProg, interp.Options{
			Args:     []ir.Value{3, 7, 11},
			Input:    inputFor(int64(seed)),
			MaxSteps: 2_000_000,
			OnBlockEnv: func(fn *cfg.Func, n cfg.NodeID, regs []ir.Value) {
				if violation != nil {
					return
				}
				env := sols[fn.Name].EnvAt(n)
				for v, val := range env {
					if val.Kind == constprop.Const && regs[v] != val.K {
						violation = fmt.Errorf("%s node %d: qualified analysis says v%d=%d, execution has %d",
							fn.Name, n, v, val.K, regs[v])
						return
					}
				}
			},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if violation != nil {
			t.Fatalf("seed %d: unsound qualified analysis: %v", seed, violation)
		}
	}
}

// TestGeneratorDeterministic: same seed, same program.
func TestGeneratorDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := DefaultConfig(seed % 1000)
		return Generate(cfg) == Generate(cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestGeneratorSeedsDiffer: different seeds produce different programs
// (almost always — the property is checked on a fixed pair).
func TestGeneratorSeedsDiffer(t *testing.T) {
	if Generate(DefaultConfig(1)) == Generate(DefaultConfig(2)) {
		t.Error("seeds 1 and 2 generated identical programs")
	}
}
