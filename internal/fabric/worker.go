package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// RunFunc executes one leased task spec and returns its result payload.
// A ctx error means the attempt was abandoned (worker shutdown or lease
// loss) — the worker reports nothing and lets the lease expire.
type RunFunc func(ctx context.Context, spec json.RawMessage) (json.RawMessage, error)

// WorkerStats is a snapshot of one worker's completed work. Busy is the
// summed task compute time — on an N-host fleet, max-over-workers Busy
// is the schedule's makespan.
type WorkerStats struct {
	Tasks int64
	Busy  time.Duration
}

// Worker is the lease-loop client: it polls the coordinator for tasks,
// heartbeats while running them, and reports completions. Every HTTP
// call carries the loop context plus a per-request deadline, and
// transient failures back off with jitter, so a coordinator restart
// costs retries, not a wedged worker.
type Worker struct {
	// ID names the worker in leases and metrics.
	ID string
	// Base is the coordinator's base URL (e.g. http://host:port).
	Base string
	// Run executes one task spec.
	Run RunFunc
	// Client is the HTTP client to use (http.DefaultClient if nil).
	Client *http.Client
	// Poll is the idle poll interval (default 200ms). The coordinator's
	// retry hints can lengthen an individual wait but never past 2s.
	Poll time.Duration
	// RequestTimeout bounds each HTTP call (default 15s).
	RequestTimeout time.Duration

	mu    sync.Mutex
	tasks int64
	busy  time.Duration
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 200 * time.Millisecond
}

func (w *Worker) timeout() time.Duration {
	if w.RequestTimeout > 0 {
		return w.RequestTimeout
	}
	return 15 * time.Second
}

// Stats returns the worker's completed-task counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerStats{Tasks: w.tasks, Busy: w.busy}
}

// Serve runs the lease loop until ctx is done. It always returns nil on
// a clean context shutdown; the loop itself retries every transient
// failure.
func (w *Worker) Serve(ctx context.Context) error {
	failures := 0
	for ctx.Err() == nil {
		ran, retry, err := w.Step(ctx)
		if err != nil {
			failures++
			sleep(ctx, backoff(failures, 100*time.Millisecond, 2*time.Second))
			continue
		}
		failures = 0
		if !ran {
			wait := w.poll()
			if retry > 0 && retry < 2*time.Second {
				wait = retry
			}
			sleep(ctx, wait+backoff(0, 10*time.Millisecond, 50*time.Millisecond))
		}
	}
	return nil
}

// Step performs one full lease cycle: one lease attempt and, when a
// task is granted, its run and completion report. It returns whether a
// task ran, the coordinator's retry hint when none was ready, and any
// transport error. Serve loops over Step; harnesses that need to
// interleave workers deterministically (benchmarks, simulations) can
// drive Step directly.
func (w *Worker) Step(ctx context.Context) (ran bool, retry time.Duration, err error) {
	var lr LeaseResponse
	code, err := w.post(ctx, "/fabric/v1/lease", &LeaseRequest{Worker: w.ID}, &lr)
	if err != nil {
		return false, 0, err
	}
	if code != http.StatusOK {
		return false, 0, fmt.Errorf("fabric: lease: HTTP %d", code)
	}
	if lr.TaskID == "" {
		return false, time.Duration(lr.RetryMS) * time.Millisecond, nil
	}
	w.runTask(ctx, &lr)
	return true, 0, nil
}

// runTask executes one leased task under a heartbeat and reports the
// outcome.
func (w *Worker) runTask(ctx context.Context, lr *LeaseResponse) {
	taskCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat at a third of the TTL; a 410 means the lease was reaped
	// (we were presumed dead) so the attempt is abandoned — a sibling
	// owns the task now, and first completion wins anyway.
	ttl := time.Duration(lr.LeaseTTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-taskCtx.Done():
				return
			case <-tick.C:
				code, err := w.post(taskCtx, "/fabric/v1/heartbeat",
					&HeartbeatRequest{Worker: w.ID, LeaseID: lr.LeaseID}, nil)
				if err == nil && code == http.StatusGone {
					cancel()
					return
				}
			}
		}
	}()

	start := time.Now()
	result, err := w.Run(taskCtx, lr.Spec)
	dur := time.Since(start)

	if taskCtx.Err() != nil {
		// Shutdown or lease loss mid-task: report nothing; the lease
		// (if still ours) expires and the task is re-enqueued.
		return
	}

	w.mu.Lock()
	w.tasks++
	w.busy += dur
	w.mu.Unlock()

	req := &CompleteRequest{
		Worker:     w.ID,
		TaskID:     lr.TaskID,
		LeaseID:    lr.LeaseID,
		DurationMS: float64(dur) / float64(time.Millisecond),
	}
	if err != nil {
		req.Error = NewTaskError(err)
	} else {
		req.Result = result
	}
	// Completion is idempotent coordinator-side, so bounded retries are
	// safe; if all fail, lease expiry re-enqueues the task.
	for attempt := 0; attempt < 3; attempt++ {
		var ack CompleteResponse
		code, perr := w.post(ctx, "/fabric/v1/complete", req, &ack)
		if perr == nil && code == http.StatusOK {
			return
		}
		sleep(ctx, backoff(attempt, 100*time.Millisecond, time.Second))
	}
}

// post sends one JSON request under the loop context plus the
// per-request deadline. out may be nil to discard the body.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	cctx, cancel := context.WithTimeout(ctx, w.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, w.Base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("fabric: decode %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	return resp.StatusCode, nil
}

// sleep waits for d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
