package fabric

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// taskBucketBounds are the per-worker task-duration histogram bounds in
// seconds — the same decades as the serve layer's stage histograms and
// the diskcache decode histogram, so all three read on one dashboard.
var taskBucketBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

const numTaskBuckets = 8

// workerStats is one worker's completed-task histogram.
type workerStats struct {
	tasks   int64
	sum     float64 // seconds
	buckets [numTaskBuckets]int64
}

// Metrics collects the fabric's counters. All methods are safe for
// concurrent use; rendering is deterministic (workers sorted by name).
type Metrics struct {
	mu sync.Mutex

	submitted  int64 // tasks ever submitted
	done       int64 // tasks completed successfully
	requeuedN  int64 // failed attempts re-enqueued (incl. expiries)
	failed     int64 // tasks permanently failed (batch aborted)
	duplicates int64 // idempotent duplicate completions deduplicated
	mismatches int64 // duplicate completions whose result fingerprint differed
	expiries   int64 // leases reaped

	bundleServed   int64 // GET bundle hits
	bundleMissing  int64 // GET bundle 404s
	bundleAdopted  int64 // PUT bundles accepted
	bundleRejected int64 // PUT bundles rejected as corrupt

	profileServed  int64 // GET profile hits
	profileMissing int64 // GET profile 404s
	profileAdopted int64 // PUT profiles retained

	workers map[string]*workerStats
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{workers: map[string]*workerStats{}}
}

func (m *Metrics) addSubmitted(n int64) { m.mu.Lock(); m.submitted += n; m.mu.Unlock() }
func (m *Metrics) requeued()            { m.mu.Lock(); m.requeuedN++; m.mu.Unlock() }

func (m *Metrics) taskFailed()     { m.mu.Lock(); m.failed++; m.mu.Unlock() }
func (m *Metrics) duplicate()      { m.mu.Lock(); m.duplicates++; m.mu.Unlock() }
func (m *Metrics) resultMismatch() { m.mu.Lock(); m.mismatches++; m.mu.Unlock() }
func (m *Metrics) leaseExpired()   { m.mu.Lock(); m.expiries++; m.mu.Unlock() }

func (m *Metrics) bundleGet(ok bool) {
	m.mu.Lock()
	if ok {
		m.bundleServed++
	} else {
		m.bundleMissing++
	}
	m.mu.Unlock()
}

func (m *Metrics) bundlePut(ok bool) {
	m.mu.Lock()
	if ok {
		m.bundleAdopted++
	} else {
		m.bundleRejected++
	}
	m.mu.Unlock()
}

func (m *Metrics) profileGet(ok bool) {
	m.mu.Lock()
	if ok {
		m.profileServed++
	} else {
		m.profileMissing++
	}
	m.mu.Unlock()
}

func (m *Metrics) profilePut() { m.mu.Lock(); m.profileAdopted++; m.mu.Unlock() }

// workerSeen makes a worker visible in the metrics even before its
// first completion.
func (m *Metrics) workerSeen(worker string) {
	m.mu.Lock()
	if m.workers[worker] == nil {
		m.workers[worker] = &workerStats{}
	}
	m.mu.Unlock()
}

// taskDone records one successful completion into the worker's
// histogram.
func (m *Metrics) taskDone(worker string, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	m.done++
	ws := m.workers[worker]
	if ws == nil {
		ws = &workerStats{}
		m.workers[worker] = ws
	}
	ws.tasks++
	ws.sum += sec
	for i, ub := range taskBucketBounds {
		if sec <= ub {
			ws.buckets[i]++
		}
	}
	m.mu.Unlock()
}

// WriteTo renders the fabric metric families in Prometheus text format.
// pending and leased are the queue depths at render time.
func (m *Metrics) WriteTo(w io.Writer, pending, leased int) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP pathflow_fabric_tasks_total Fabric task events by state.\n")
	fmt.Fprintf(w, "# TYPE pathflow_fabric_tasks_total counter\n")
	for _, s := range []struct {
		state string
		v     int64
	}{
		{"submitted", m.submitted},
		{"done", m.done},
		{"requeued", m.requeuedN},
		{"failed", m.failed},
		{"duplicate", m.duplicates},
		{"mismatch", m.mismatches},
	} {
		fmt.Fprintf(w, "pathflow_fabric_tasks_total{state=%q} %d\n", s.state, s.v)
	}

	fmt.Fprintf(w, "# HELP pathflow_fabric_lease_expiries_total Leases reaped after missed heartbeats.\n")
	fmt.Fprintf(w, "# TYPE pathflow_fabric_lease_expiries_total counter\n")
	fmt.Fprintf(w, "pathflow_fabric_lease_expiries_total %d\n", m.expiries)

	fmt.Fprintf(w, "# HELP pathflow_fabric_tasks_pending Tasks waiting for a lease.\n")
	fmt.Fprintf(w, "# TYPE pathflow_fabric_tasks_pending gauge\n")
	fmt.Fprintf(w, "pathflow_fabric_tasks_pending %d\n", pending)
	fmt.Fprintf(w, "# HELP pathflow_fabric_tasks_leased Tasks currently leased to workers.\n")
	fmt.Fprintf(w, "# TYPE pathflow_fabric_tasks_leased gauge\n")
	fmt.Fprintf(w, "pathflow_fabric_tasks_leased %d\n", leased)

	fmt.Fprintf(w, "# HELP pathflow_fabric_workers Distinct workers that have leased tasks.\n")
	fmt.Fprintf(w, "# TYPE pathflow_fabric_workers gauge\n")
	fmt.Fprintf(w, "pathflow_fabric_workers %d\n", len(m.workers))

	fmt.Fprintf(w, "# HELP pathflow_fabric_bundles_total Bundle exchange events by direction and outcome.\n")
	fmt.Fprintf(w, "# TYPE pathflow_fabric_bundles_total counter\n")
	for _, s := range []struct {
		op string
		v  int64
	}{
		{"served", m.bundleServed},
		{"missing", m.bundleMissing},
		{"adopted", m.bundleAdopted},
		{"rejected", m.bundleRejected},
	} {
		fmt.Fprintf(w, "pathflow_fabric_bundles_total{op=%q} %d\n", s.op, s.v)
	}

	fmt.Fprintf(w, "# HELP pathflow_fabric_profiles_total Training-profile exchange events.\n")
	fmt.Fprintf(w, "# TYPE pathflow_fabric_profiles_total counter\n")
	for _, s := range []struct {
		op string
		v  int64
	}{
		{"served", m.profileServed},
		{"missing", m.profileMissing},
		{"adopted", m.profileAdopted},
	} {
		fmt.Fprintf(w, "pathflow_fabric_profiles_total{op=%q} %d\n", s.op, s.v)
	}

	names := make([]string, 0, len(m.workers))
	for name := range m.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP pathflow_fabric_worker_task_seconds Worker-measured task compute time.\n")
	fmt.Fprintf(w, "# TYPE pathflow_fabric_worker_task_seconds histogram\n")
	for _, name := range names {
		ws := m.workers[name]
		for i, ub := range taskBucketBounds {
			fmt.Fprintf(w, "pathflow_fabric_worker_task_seconds_bucket{worker=%q,le=%q} %d\n",
				name, formatBound(ub), ws.buckets[i])
		}
		fmt.Fprintf(w, "pathflow_fabric_worker_task_seconds_bucket{worker=%q,le=\"+Inf\"} %d\n", name, ws.tasks)
		fmt.Fprintf(w, "pathflow_fabric_worker_task_seconds_sum{worker=%q} %g\n", name, ws.sum)
		fmt.Fprintf(w, "pathflow_fabric_worker_task_seconds_count{worker=%q} %d\n", name, ws.tasks)
	}
}

func formatBound(ub float64) string { return fmt.Sprintf("%g", ub) }
