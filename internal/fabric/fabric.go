// Package fabric is the distributed analysis layer: a coordinator that
// shards work across a pool of worker processes, and the worker loop
// that joins it.
//
// The fabric is payload-agnostic. A task is an opaque JSON spec plus a
// scheduling priority and an affinity key; the serving layer defines
// what a spec means (one function at one sweep grid point) and how to
// run it. The coordinator owns a lease/heartbeat/retry queue:
//
//   - a worker leases the best ready task (affinity match first, then
//     highest priority — LPT keeps the makespan balanced, affinity keeps
//     a program's tasks on workers that already paid its training run);
//   - leases carry a TTL and are kept alive by heartbeats; a worker
//     that dies stops heartbeating, the lease expires, and the task is
//     re-enqueued with jittered backoff;
//   - retries are bounded — a task that keeps failing (worker errors
//     and lease expiries both count) permanently fails its batch with
//     the worker-side StageError provenance intact;
//   - completion is idempotent: the first result wins, and a duplicate
//     completion (a slow worker finishing after its lease expired and a
//     sibling re-ran the task) is acknowledged and deduplicated by the
//     result's fingerprint.
//
// Workers exchange artifacts as the engine's content-addressed .pfac
// bundles: the coordinator serves GET/PUT bundle endpoints over its
// disk store, and workers mount that as the diskcache Remote tier (or
// simply share one -cachedir), so no shard recomputes what a sibling
// already built. Determinism is preserved end to end — the fabric moves
// *where* a pure stage function runs, never *what* it computes, so
// distributed results are byte-identical to single-process runs.
package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"pathflow/internal/engine"
)

// Config bounds the coordinator's queue discipline.
type Config struct {
	// LeaseTTL is how long a lease survives without a heartbeat before
	// the task is re-enqueued. Default 10s.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times one task may be attempted
	// (worker errors and lease expiries both consume an attempt) before
	// it permanently fails its batch. Default 3.
	MaxAttempts int
	// RetryBase is the base of the exponential re-enqueue backoff.
	// Default 100ms.
	RetryBase time.Duration
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 10 * time.Second
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 3
}

func (c Config) retryBase() time.Duration {
	if c.RetryBase > 0 {
		return c.RetryBase
	}
	return 100 * time.Millisecond
}

// backoff returns the jittered exponential delay for the given retry
// ordinal: base·2^n, capped at max, with ±25% jitter so a herd of
// retries (or idle pollers) never synchronizes.
func backoff(n int, base, max time.Duration) time.Duration {
	d := base << min(n, 10)
	if d <= 0 || d > max {
		d = max
	}
	j := time.Duration(rand.Int64N(int64(d)/2+1)) - d/4
	return d + j
}

// --- Wire types -----------------------------------------------------------

// LeaseRequest asks for one task on behalf of a named worker.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants one task, or — with TaskID empty — tells the
// worker when to poll again.
type LeaseResponse struct {
	TaskID     string          `json:"task_id,omitempty"`
	LeaseID    string          `json:"lease_id,omitempty"`
	Spec       json.RawMessage `json:"spec,omitempty"`
	Attempt    int             `json:"attempt,omitempty"`
	LeaseTTLMS int64           `json:"lease_ttl_ms,omitempty"`
	RetryMS    int64           `json:"retry_ms,omitempty"`
}

// HeartbeatRequest extends a lease. A 410 response means the lease is
// gone (expired and re-assigned) and the worker should abandon the task.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
}

// CompleteRequest reports one finished attempt: a result on success, a
// TaskError on failure. DurationMS is the worker-measured compute time,
// which feeds the per-worker task histogram.
type CompleteRequest struct {
	Worker     string          `json:"worker"`
	TaskID     string          `json:"task_id"`
	LeaseID    string          `json:"lease_id"`
	DurationMS float64         `json:"duration_ms"`
	Result     json.RawMessage `json:"result,omitempty"`
	Error      *TaskError      `json:"error,omitempty"`
}

// Completion acknowledgement statuses.
const (
	CompleteAccepted  = "accepted"  // first completion of a live task
	CompleteDuplicate = "duplicate" // task already done; result deduplicated
	CompleteDropped   = "dropped"   // task no longer tracked (batch gone)
	CompleteRequeued  = "requeued"  // failed attempt; task re-enqueued
)

// CompleteResponse acknowledges a completion with one of the statuses
// above. Every status is terminal for the worker — there is nothing to
// retry.
type CompleteResponse struct {
	Status string `json:"status"`
}

// TaskError carries a worker-side failure across the wire with its
// StageError provenance (which pipeline stage, which function) intact.
type TaskError struct {
	Message string `json:"message"`
	Stage   string `json:"stage,omitempty"`
	Func    string `json:"func,omitempty"`
}

// NewTaskError captures err for the wire. If the chain contains a
// StageError its provenance fields are lifted out and Message keeps only
// the inner cause, so Err can rebuild the identical error coordinator-
// side.
func NewTaskError(err error) *TaskError {
	var se *engine.StageError
	if errors.As(err, &se) {
		return &TaskError{Message: se.Err.Error(), Stage: string(se.Stage), Func: se.Func}
	}
	return &TaskError{Message: err.Error()}
}

// Err rebuilds the worker-side error, as a *engine.StageError when
// provenance was captured, so errors.As works on the coordinator exactly
// as it would have on the worker.
func (t *TaskError) Err() error {
	if t == nil {
		return nil
	}
	if t.Stage != "" {
		return &engine.StageError{Stage: engine.StageName(t.Stage), Func: t.Func, Err: errors.New(t.Message)}
	}
	return errors.New(t.Message)
}

// TaskSpec is one unit of work submitted to the coordinator.
type TaskSpec struct {
	// Spec is the opaque payload handed to a worker's RunFunc.
	Spec json.RawMessage
	// Priority orders the queue (higher first). Submitters set it to the
	// task's predicted cost — instruction count scaled by the delta
	// machinery's dirty-stage count — so the heaviest work starts first
	// (LPT) and an incremental edit fans out only its recompute frontier.
	Priority int64
	// Affinity groups tasks that share expensive worker-local state (in
	// practice: the target program, whose training profile each worker
	// memoizes). The scheduler prefers handing a worker tasks whose
	// affinity it has already seen; idle workers steal across groups.
	Affinity string
}

// TaskEvent describes one scheduling event on a batch, delivered to the
// batch's observer (under no locks held by the caller beyond the
// queue's own).
type TaskEvent struct {
	Index    int           // task's position in the submitted batch
	Worker   string        // worker that reported the attempt
	Duration time.Duration // worker-measured compute time
	Requeued bool          // attempt failed or lease expired; task re-enqueued
	Err      string        // failure message for requeue events
}

func (e TaskEvent) String() string {
	if e.Requeued {
		return fmt.Sprintf("task %d requeued (worker %s): %s", e.Index, e.Worker, e.Err)
	}
	return fmt.Sprintf("task %d done (worker %s, %s)", e.Index, e.Worker, e.Duration)
}
