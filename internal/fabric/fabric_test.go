package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pathflow/internal/engine"
	"pathflow/internal/engine/diskcache"
)

func newTestQueue(cfg Config) *queue { return newQueue(cfg, NewMetrics()) }

func spec(s string) TaskSpec { return TaskSpec{Spec: json.RawMessage(s)} }

// --- Queue discipline -------------------------------------------------------

func TestQueueLeaseOrder(t *testing.T) {
	q := newTestQueue(Config{})
	q.submit([]TaskSpec{
		{Spec: json.RawMessage(`"a"`), Priority: 1},
		{Spec: json.RawMessage(`"b"`), Priority: 5},
		{Spec: json.RawMessage(`"c"`), Priority: 5},
	}, nil)
	now := time.Now()
	var got []string
	for i := 0; i < 3; i++ {
		tk, _ := q.lease("w1", now)
		if tk == nil {
			t.Fatalf("lease %d: no task", i)
		}
		got = append(got, string(tk.spec))
	}
	// Priority first, then submission order within a priority.
	want := []string{`"b"`, `"c"`, `"a"`}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lease order = %v, want %v", got, want)
		}
	}
	if tk, _ := q.lease("w1", now); tk != nil {
		t.Fatalf("lease on drained queue returned %q", tk.spec)
	}
}

func TestQueueAffinityBeatsPriority(t *testing.T) {
	q := newTestQueue(Config{})
	now := time.Now()

	// w1 serves one task of affinity "progA", establishing the affinity.
	b := q.submit([]TaskSpec{{Spec: json.RawMessage(`"warm"`), Affinity: "progA"}}, nil)
	tk, _ := q.lease("w1", now)
	q.complete(&CompleteRequest{Worker: "w1", TaskID: tk.id, Result: json.RawMessage(`1`)}, now)
	if _, err := b.Wait(context.Background()); err != nil {
		t.Fatalf("warmup batch: %v", err)
	}

	// Affinity wins within the bounded-deference band (progB is higher
	// priority, but not more than twice progA's).
	q.submit([]TaskSpec{
		{Spec: json.RawMessage(`"other"`), Priority: 100, Affinity: "progB"},
		{Spec: json.RawMessage(`"mine"`), Priority: 60, Affinity: "progA"},
	}, nil)
	tk, _ = q.lease("w1", now)
	if string(tk.spec) != `"mine"` {
		t.Fatalf("w1 leased %s, want the progA task despite lower priority", tk.spec)
	}
	// A worker with no history takes the unclaimed key.
	tk, _ = q.lease("w2", now)
	if string(tk.spec) != `"other"` {
		t.Fatalf("w2 leased %s, want the progB task", tk.spec)
	}
}

// TestQueueBoundedDeference locks the LPT override: a pending task
// predicted over twice as costly as the affinity-preferred choice beats
// locality, so one outlier-heavy key's points spread across the fleet
// instead of serializing on their owner.
func TestQueueBoundedDeference(t *testing.T) {
	q := newTestQueue(Config{})
	now := time.Now()

	// w1 owns "whale" by serving its first point.
	b := q.submit([]TaskSpec{{Spec: json.RawMessage(`"whale-p1"`), Priority: 1000, Affinity: "whale"}}, nil)
	tk, _ := q.lease("w1", now)
	q.complete(&CompleteRequest{Worker: "w1", TaskID: tk.id, Result: json.RawMessage(`1`)}, now)
	if _, err := b.Wait(context.Background()); err != nil {
		t.Fatalf("warmup batch: %v", err)
	}

	q.submit([]TaskSpec{
		{Spec: json.RawMessage(`"whale-p2"`), Priority: 1000, Affinity: "whale"},
		{Spec: json.RawMessage(`"minnow"`), Priority: 10, Affinity: "minnow"},
	}, nil)
	// w2 has no affinity for "whale", but the whale point is 100x the
	// unclaimed minnow: cost dominates locality and w2 steals it.
	tk, _ = q.lease("w2", now)
	if string(tk.spec) != `"whale-p2"` {
		t.Fatalf("w2 leased %s, want the whale point via bounded deference", tk.spec)
	}
	// w1 (the whale's owner) is left the minnow.
	tk, _ = q.lease("w1", now)
	if string(tk.spec) != `"minnow"` {
		t.Fatalf("w1 leased %s, want the minnow", tk.spec)
	}
}

func TestLeaseExpiryRequeues(t *testing.T) {
	cfg := Config{LeaseTTL: time.Second, RetryBase: 50 * time.Millisecond}
	q := newTestQueue(cfg)
	var events []TaskEvent
	q.submit([]TaskSpec{spec(`"x"`)}, func(ev TaskEvent) { events = append(events, ev) })

	t0 := time.Now()
	tk, _ := q.lease("w1", t0)
	if tk == nil {
		t.Fatal("no task")
	}

	// Past the TTL the lease is reaped; the task is requeued behind a
	// backoff gate, so an immediate re-lease reports a wait instead.
	tk2, wait := q.lease("w2", t0.Add(1100*time.Millisecond))
	if tk2 != nil {
		t.Fatalf("leased %q while still backoff-gated", tk2.spec)
	}
	if wait <= 0 {
		t.Fatalf("wait = %v, want a positive backoff gate", wait)
	}
	tk3, _ := q.lease("w2", t0.Add(1400*time.Millisecond))
	if tk3 == nil {
		t.Fatal("task not re-leasable after the backoff gate")
	}
	if tk3.attempt != 1 {
		t.Fatalf("attempt = %d, want 1 (the expiry consumed one)", tk3.attempt)
	}
	if len(events) != 1 || !events[0].Requeued || events[0].Worker != "w1" {
		t.Fatalf("events = %+v, want one requeue blaming w1", events)
	}
	if q.metrics.expiries != 1 {
		t.Fatalf("expiries = %d, want 1", q.metrics.expiries)
	}
}

func TestBoundedAttemptsFailBatchWithProvenance(t *testing.T) {
	q := newTestQueue(Config{MaxAttempts: 2, RetryBase: time.Millisecond})
	b := q.submit([]TaskSpec{spec(`"doomed"`), spec(`"bystander"`)}, nil)
	now := time.Now()

	werr := NewTaskError(&engine.StageError{Stage: "solve", Func: "main", Err: errors.New("boom")})
	tk, _ := q.lease("w1", now)
	if st := q.complete(&CompleteRequest{Worker: "w1", TaskID: tk.id, Error: werr}, now); st != CompleteRequeued {
		t.Fatalf("first failure ack = %q, want %q", st, CompleteRequeued)
	}
	if st := q.complete(&CompleteRequest{Worker: "w2", TaskID: tk.id, Error: werr}, now); st != CompleteAccepted {
		t.Fatalf("final failure ack = %q, want %q", st, CompleteAccepted)
	}

	_, err := b.Wait(context.Background())
	if err == nil {
		t.Fatal("batch succeeded despite a permanently failed task")
	}
	var se *engine.StageError
	if !errors.As(err, &se) || se.Stage != "solve" || se.Func != "main" {
		t.Fatalf("batch error %v lost StageError provenance", err)
	}
	if !strings.Contains(err.Error(), "w2") {
		t.Fatalf("batch error %v does not name the last worker", err)
	}
	// The bystander task was withdrawn with its batch.
	if p, l := q.depth(); p != 0 || l != 0 {
		t.Fatalf("depth = (%d, %d) after batch failure, want (0, 0)", p, l)
	}
}

func TestCompleteIdempotentDuplicateAndDropped(t *testing.T) {
	q := newTestQueue(Config{})
	b := q.submit([]TaskSpec{spec(`"x"`)}, nil)
	now := time.Now()
	tk, _ := q.lease("w1", now)

	r1 := json.RawMessage(`{"v":1}`)
	if st := q.complete(&CompleteRequest{Worker: "w1", TaskID: tk.id, Result: r1}, now); st != CompleteAccepted {
		t.Fatalf("first complete = %q", st)
	}
	// A slow sibling reporting the same bytes is deduplicated...
	if st := q.complete(&CompleteRequest{Worker: "w2", TaskID: tk.id, Result: r1}, now); st != CompleteDuplicate {
		t.Fatalf("duplicate complete = %q", st)
	}
	// ...and different bytes are flagged (a determinism violation).
	if st := q.complete(&CompleteRequest{Worker: "w2", TaskID: tk.id, Result: json.RawMessage(`{"v":2}`)}, now); st != CompleteDuplicate {
		t.Fatalf("mismatched complete = %q", st)
	}
	if q.metrics.duplicates != 1 || q.metrics.mismatches != 1 {
		t.Fatalf("duplicates=%d mismatches=%d, want 1 and 1", q.metrics.duplicates, q.metrics.mismatches)
	}
	if st := q.complete(&CompleteRequest{Worker: "w1", TaskID: "t-999"}, now); st != CompleteDropped {
		t.Fatalf("unknown-task complete = %q", st)
	}
	res, err := b.Wait(context.Background())
	if err != nil || string(res[0]) != `{"v":1}` {
		t.Fatalf("Wait = %s, %v; the first result must win", res[0], err)
	}
}

func TestBatchWaitCancelWithdraws(t *testing.T) {
	q := newTestQueue(Config{})
	b := q.submit([]TaskSpec{spec(`"x"`), spec(`"y"`)}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if p, l := q.depth(); p != 0 || l != 0 {
		t.Fatalf("depth = (%d, %d) after cancel, want (0, 0)", p, l)
	}
}

func TestEmptyBatch(t *testing.T) {
	q := newTestQueue(Config{})
	b := q.submit(nil, nil)
	res, err := b.Wait(context.Background())
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch Wait = %v, %v", res, err)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	q := newTestQueue(Config{LeaseTTL: time.Second})
	q.submit([]TaskSpec{spec(`"x"`)}, nil)
	t0 := time.Now()
	tk, _ := q.lease("w1", t0)
	if !q.heartbeat(tk.leaseID, t0.Add(900*time.Millisecond)) {
		t.Fatal("heartbeat on a live lease refused")
	}
	// The old deadline has passed, but the heartbeat moved it.
	q.reap(t0.Add(1500 * time.Millisecond))
	if p, l := q.depth(); p != 0 || l != 1 {
		t.Fatalf("depth = (%d, %d), want the task still leased", p, l)
	}
	if q.heartbeat("l-999", t0) {
		t.Fatal("heartbeat on an unknown lease accepted")
	}
}

// --- Coordinator + worker over HTTP ----------------------------------------

// echoRun doubles {"n": k} into {"n2": 2k}.
func echoRun(ctx context.Context, raw json.RawMessage) (json.RawMessage, error) {
	var in struct {
		N int `json:"n"`
	}
	if err := json.Unmarshal(raw, &in); err != nil {
		return nil, err
	}
	return json.Marshal(map[string]int{"n2": 2 * in.N})
}

func startCoordinator(t *testing.T, cfg Config, store *diskcache.Store) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := NewCoordinator(cfg, store)
	mux := http.NewServeMux()
	c.Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return c, ts
}

func TestWorkerLeaseLoop(t *testing.T) {
	c, ts := startCoordinator(t, Config{LeaseTTL: 2 * time.Second, RetryBase: 5 * time.Millisecond}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{ID: "w1", Base: ts.URL, Run: echoRun, Poll: 5 * time.Millisecond}
	go w.Serve(ctx) //nolint:errcheck

	const n = 8
	specs := make([]TaskSpec, n)
	for i := range specs {
		specs[i] = TaskSpec{Spec: json.RawMessage(fmt.Sprintf(`{"n":%d}`, i))}
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer wcancel()
	res, err := c.Submit(specs, nil).Wait(wctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for i, r := range res {
		want := fmt.Sprintf(`{"n2":%d}`, 2*i)
		if string(r) != want {
			t.Fatalf("result[%d] = %s, want %s (results must come back in submit order)", i, r, want)
		}
	}
	cancel()
	if st := w.Stats(); st.Tasks != n {
		t.Fatalf("worker stats = %+v, want %d tasks", st, n)
	}
}

func TestWorkerFailureRequeuesThenSucceeds(t *testing.T) {
	c, ts := startCoordinator(t, Config{LeaseTTL: 2 * time.Second, MaxAttempts: 3, RetryBase: 5 * time.Millisecond}, nil)

	var mu sync.Mutex
	tried := map[string]bool{}
	run := func(ctx context.Context, raw json.RawMessage) (json.RawMessage, error) {
		mu.Lock()
		first := !tried[string(raw)]
		tried[string(raw)] = true
		mu.Unlock()
		if first {
			return nil, &engine.StageError{Stage: "profile", Func: "f", Err: errors.New("transient")}
		}
		return echoRun(ctx, raw)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{ID: "w1", Base: ts.URL, Run: run, Poll: 5 * time.Millisecond}
	go w.Serve(ctx) //nolint:errcheck

	wctx, wcancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer wcancel()
	var events []TaskEvent
	var emu sync.Mutex
	res, err := c.Submit([]TaskSpec{spec(`{"n":3}`)}, func(ev TaskEvent) {
		emu.Lock()
		events = append(events, ev)
		emu.Unlock()
	}).Wait(wctx)
	if err != nil {
		t.Fatalf("Wait: %v (the retry should have recovered)", err)
	}
	if string(res[0]) != `{"n2":6}` {
		t.Fatalf("result = %s", res[0])
	}
	emu.Lock()
	defer emu.Unlock()
	if len(events) != 2 || !events[0].Requeued || events[1].Requeued {
		t.Fatalf("events = %+v, want a requeue then a completion", events)
	}
	if !strings.Contains(events[0].Err, "transient") {
		t.Fatalf("requeue event error = %q, want the worker's message", events[0].Err)
	}
}

func TestWorkerDeathRecoversViaLeaseExpiry(t *testing.T) {
	c, ts := startCoordinator(t, Config{LeaseTTL: 300 * time.Millisecond, RetryBase: 5 * time.Millisecond}, nil)

	// The first attempt wedges until its worker dies; the retry (on a
	// healthy worker) succeeds.
	var mu sync.Mutex
	attempts := 0
	firstLeased := make(chan struct{})
	run := func(ctx context.Context, raw json.RawMessage) (json.RawMessage, error) {
		mu.Lock()
		attempts++
		first := attempts == 1
		mu.Unlock()
		if first {
			close(firstLeased)
			<-ctx.Done() // wedged until the worker is killed
			return nil, ctx.Err()
		}
		return echoRun(ctx, raw)
	}

	ctx1, kill := context.WithCancel(context.Background())
	w1 := &Worker{ID: "victim", Base: ts.URL, Run: run, Poll: 5 * time.Millisecond}
	go w1.Serve(ctx1) //nolint:errcheck

	batch := c.Submit([]TaskSpec{spec(`{"n":5}`)}, nil)
	<-firstLeased
	kill() // worker dies mid-task; heartbeats stop; the lease expires

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	w2 := &Worker{ID: "survivor", Base: ts.URL, Run: run, Poll: 5 * time.Millisecond}
	go w2.Serve(ctx2) //nolint:errcheck

	wctx, wcancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer wcancel()
	res, err := batch.Wait(wctx)
	if err != nil {
		t.Fatalf("Wait: %v (lease expiry should have re-enqueued the task)", err)
	}
	if string(res[0]) != `{"n2":10}` {
		t.Fatalf("result = %s", res[0])
	}
	c.metrics.mu.Lock()
	expiries := c.metrics.expiries
	c.metrics.mu.Unlock()
	if expiries < 1 {
		t.Fatalf("expiries = %d, want at least 1", expiries)
	}
	if st := w2.Stats(); st.Tasks != 1 {
		t.Fatalf("survivor stats = %+v, want the retried task", st)
	}
}

// --- Bundle exchange --------------------------------------------------------

func TestBundleExchangeThroughCoordinator(t *testing.T) {
	coordStore, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startCoordinator(t, Config{}, coordStore)
	rc := NewRemoteCache(context.Background(), ts.URL, nil)

	key := diskcache.Key{Kind: diskcache.KindSelect, Slice: 1, Chain: 2, Knob: 3}
	name := fmt.Sprintf("select-%016x%016x%016x.pfac", 1, 2, 3)
	data := diskcache.EncodeSelect(diskcache.Meta{}, nil)

	// Worker A computes and puts: the bundle is pushed to the coordinator.
	storeA, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	storeA.SetRemote(rc)
	storeA.Put(key, data)
	storeA.WaitRemote() // pushes are async; drain before asserting
	if got, ok := coordStore.ReadBundle(name); !ok || !bytes.Equal(got, data) {
		t.Fatalf("coordinator bundle after push: ok=%v", ok)
	}
	if st := storeA.Stats(); st.RemotePushes != 1 {
		t.Fatalf("RemotePushes = %d, want 1", st.RemotePushes)
	}

	// Worker B misses locally and fetches through the coordinator.
	storeB, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	storeB.SetRemote(rc)
	got, ok := storeB.Get(key)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("remote-backed Get: ok=%v", ok)
	}
	st := storeB.Stats()
	if st.RemoteFetches != 1 || st.Misses != 0 {
		t.Fatalf("stats = fetches %d misses %d, want a remote hit, not a miss", st.RemoteFetches, st.Misses)
	}
	// The fetched bundle was adopted locally: a second Get is local.
	if _, ok := storeB.Get(key); !ok {
		t.Fatal("adopted bundle not served locally")
	}
	if st := storeB.Stats(); st.RemoteFetches != 1 {
		t.Fatalf("RemoteFetches = %d after local re-read, want still 1", st.RemoteFetches)
	}
}

func TestBundleEndpointsRejectBadInput(t *testing.T) {
	coordStore, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startCoordinator(t, Config{}, coordStore)
	client := ts.Client()
	goodName := fmt.Sprintf("select-%048x.pfac", 7)

	put := func(name string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/fabric/v1/bundles/"+name, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := put(goodName, []byte("not a frame")); code != http.StatusBadRequest {
		t.Fatalf("corrupt frame PUT = %d, want 400", code)
	}
	// A checksum-valid frame under a kind-mismatched name is still corrupt.
	if code := put(fmt.Sprintf("reduced-%048x.pfac", 7), diskcache.EncodeSelect(diskcache.Meta{}, nil)); code != http.StatusBadRequest {
		t.Fatalf("kind-mismatched PUT = %d, want 400", code)
	}
	if code := put("..%2Fescape.pfac", []byte("x")); code != http.StatusBadRequest {
		t.Fatalf("path-escape PUT = %d, want 400", code)
	}
	if code := put(goodName, diskcache.EncodeSelect(diskcache.Meta{}, nil)); code != http.StatusNoContent {
		t.Fatalf("valid PUT = %d, want 204", code)
	}

	resp, err := client.Get(ts.URL + "/fabric/v1/bundles/" + fmt.Sprintf("select-%048x.pfac", 8))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing bundle GET = %d, want 404", resp.StatusCode)
	}
	// RemoteCache maps the 404 to a plain miss.
	rc := NewRemoteCache(context.Background(), ts.URL, nil)
	if _, ok := rc.Fetch(fmt.Sprintf("select-%048x.pfac", 8)); ok {
		t.Fatal("Fetch of a missing bundle reported ok")
	}
	if data, ok := rc.Fetch(goodName); !ok || len(data) == 0 {
		t.Fatal("Fetch of a published bundle failed")
	}
}

// --- Metrics ----------------------------------------------------------------

func TestMetricsRender(t *testing.T) {
	m := NewMetrics()
	m.addSubmitted(3)
	m.taskDone("w1", 5*time.Millisecond)
	m.requeued()
	m.leaseExpired()
	m.bundleGet(true)
	m.bundlePut(false)

	var buf bytes.Buffer
	m.WriteTo(&buf, 2, 1)
	out := buf.String()
	for _, want := range []string{
		`pathflow_fabric_tasks_total{state="submitted"} 3`,
		`pathflow_fabric_tasks_total{state="done"} 1`,
		`pathflow_fabric_tasks_total{state="requeued"} 1`,
		`pathflow_fabric_lease_expiries_total 1`,
		`pathflow_fabric_tasks_pending 2`,
		`pathflow_fabric_tasks_leased 1`,
		`pathflow_fabric_bundles_total{op="served"} 1`,
		`pathflow_fabric_bundles_total{op="rejected"} 1`,
		`pathflow_fabric_worker_task_seconds_bucket{worker="w1",le="0.01"} 1`,
		`pathflow_fabric_worker_task_seconds_count{worker="w1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

func TestBackoffBounds(t *testing.T) {
	for n := 0; n < 20; n++ {
		d := backoff(n, 100*time.Millisecond, 2*time.Second)
		if d < 0 || d > 2*time.Second+500*time.Millisecond {
			t.Fatalf("backoff(%d) = %v out of bounds", n, d)
		}
	}
}

func TestTaskErrorRoundTrip(t *testing.T) {
	orig := &engine.StageError{Stage: "trace", Func: "loop", Err: errors.New("bad edge")}
	te := NewTaskError(fmt.Errorf("wrapped: %w", orig))
	back := te.Err()
	var se *engine.StageError
	if !errors.As(back, &se) || se.Stage != "trace" || se.Func != "loop" || se.Err.Error() != "bad edge" {
		t.Fatalf("round trip lost provenance: %v", back)
	}
	plain := NewTaskError(errors.New("flat"))
	if errors.As(plain.Err(), &se) {
		t.Fatal("plain error grew StageError provenance")
	}
}
