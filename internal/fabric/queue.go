package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

type taskState uint8

const (
	taskPending taskState = iota
	taskLeased
	taskDone
)

// task is one tracked unit of work.
type task struct {
	id       string
	seq      int64
	spec     json.RawMessage
	priority int64
	affinity string

	batch *Batch
	index int // result slot in the batch

	state     taskState
	attempt   int       // attempts consumed (errors + lease expiries)
	notBefore time.Time // backoff gate while pending
	leaseID   string
	worker    string
	deadline  time.Time // lease expiry
	resultFP  uint64    // FNV-64a of the winning result, for dedup
}

// queue is the coordinator's scheduler state. One mutex guards
// everything — operations are map lookups and short scans over at most
// a few thousand pending tasks, far off any hot path.
type queue struct {
	cfg     Config
	metrics *Metrics

	mu      sync.Mutex
	tasks   map[string]*task           // all live tasks by id
	pending map[string]*task           // state == taskPending
	byLease map[string]*task           // state == taskLeased, by lease id
	seen    map[string]map[string]bool // worker -> affinity keys served
	served  map[string]bool            // affinity keys served by anyone
	seq     int64
}

func newQueue(cfg Config, m *Metrics) *queue {
	return &queue{
		cfg:     cfg,
		metrics: m,
		tasks:   map[string]*task{},
		pending: map[string]*task{},
		byLease: map[string]*task{},
		seen:    map[string]map[string]bool{},
		served:  map[string]bool{},
	}
}

// Batch is one submitted group of tasks. Results come back in submit
// order; the first permanent task failure fails the whole batch.
type Batch struct {
	q         *queue
	results   []json.RawMessage
	remaining int
	err       error
	done      chan struct{}
	observer  func(TaskEvent)
}

// submit registers the specs as one batch.
func (q *queue) submit(specs []TaskSpec, observer func(TaskEvent)) *Batch {
	b := &Batch{
		q:         q,
		results:   make([]json.RawMessage, len(specs)),
		remaining: len(specs),
		done:      make(chan struct{}),
		observer:  observer,
	}
	q.mu.Lock()
	for i, sp := range specs {
		q.seq++
		t := &task{
			id:       fmt.Sprintf("t-%d", q.seq),
			seq:      q.seq,
			spec:     sp.Spec,
			priority: sp.Priority,
			affinity: sp.Affinity,
			batch:    b,
			index:    i,
		}
		q.tasks[t.id] = t
		q.pending[t.id] = t
	}
	q.metrics.addSubmitted(int64(len(specs)))
	if b.remaining == 0 {
		close(b.done)
	}
	q.mu.Unlock()
	return b
}

// Wait blocks until every task in the batch completed, any task
// permanently failed, or ctx is done. On ctx cancellation the batch's
// remaining tasks are withdrawn from the queue. Wait also drives lease
// expiry, so abandoned work is re-enqueued even while no worker polls.
func (b *Batch) Wait(ctx context.Context) ([]json.RawMessage, error) {
	period := b.q.cfg.leaseTTL() / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-b.done:
			b.q.mu.Lock()
			res, err := b.results, b.err
			b.q.mu.Unlock()
			if err != nil {
				return nil, err
			}
			return res, nil
		case <-ctx.Done():
			b.q.cancel(b)
			return nil, ctx.Err()
		case <-tick.C:
			b.q.reap(time.Now())
		}
	}
}

// cancel withdraws a batch's remaining tasks. In-flight completions for
// them are acknowledged as dropped.
func (q *queue) cancel(b *Batch) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for id, t := range q.tasks {
		if t.batch != b {
			continue
		}
		delete(q.tasks, id)
		delete(q.pending, id)
		if t.leaseID != "" {
			delete(q.byLease, t.leaseID)
		}
	}
}

// lease hands the named worker the best ready task. Eligible tasks rank
// in three classes — work-stealing discipline over affinity keys:
//
//  2. own: the worker has served this affinity before (its caches are
//     warm for it);
//  1. unclaimed: no worker has served the affinity yet (or the task has
//     none) — spreading fresh keys across the fleet;
//  0. steal: another worker owns the affinity. Taken only when nothing
//     better is ready, so sibling points of one key stay co-located
//     while an idle worker still drains a slow or dead peer's backlog.
//     Stealing makes the thief an owner too, so a dead owner's keys
//     migrate permanently after one steal each.
//
// Within a class: higher priority, then submission order. The class
// preference is bounded, though: when some eligible task's priority is
// more than twice the class-preferred choice's, predicted cost
// dominates locality and the heavier task wins regardless of class —
// LPT spreading for outlier-heavy work (one function's points would
// otherwise serialize on their owner), stickiness for the fine-grained
// rest. Returns (nil, wait) when nothing is ready — wait is how long
// until the earliest backoff gate opens (0 = queue empty, poll at
// leisure).
func (q *queue) lease(worker string, now time.Time) (*task, time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(now)

	aff := q.seen[worker]
	var best, heaviest *task
	var bestClass int
	var wait time.Duration
	for _, t := range q.pending {
		if now.Before(t.notBefore) {
			if d := t.notBefore.Sub(now); wait == 0 || d < wait {
				wait = d
			}
			continue
		}
		class := 1 // unclaimed (or no affinity)
		if t.affinity != "" && q.served[t.affinity] {
			if aff != nil && aff[t.affinity] {
				class = 2 // own
			} else {
				class = 0 // steal
			}
		}
		if best == nil ||
			class > bestClass ||
			(class == bestClass && (t.priority > best.priority ||
				(t.priority == best.priority && t.seq < best.seq))) {
			best, bestClass = t, class
		}
		if heaviest == nil || t.priority > heaviest.priority ||
			(t.priority == heaviest.priority && t.seq < heaviest.seq) {
			heaviest = t
		}
	}
	if best == nil {
		return nil, wait
	}
	// Bounded deference: a task predicted over twice as costly as the
	// class-preferred one beats locality.
	if bp := best.priority; heaviest != best && (bp < 0 || heaviest.priority > 2*bp) {
		best = heaviest
	}

	delete(q.pending, best.id)
	best.state = taskLeased
	q.seq++
	best.leaseID = fmt.Sprintf("l-%d", q.seq)
	best.worker = worker
	best.deadline = now.Add(q.cfg.leaseTTL())
	q.byLease[best.leaseID] = best
	if q.seen[worker] == nil {
		q.seen[worker] = map[string]bool{}
	}
	q.seen[worker][best.affinity] = true
	if best.affinity != "" {
		q.served[best.affinity] = true
	}
	q.metrics.workerSeen(worker)
	return best, 0
}

// heartbeat extends a lease; false means the lease is gone and the
// worker should abandon the attempt.
func (q *queue) heartbeat(leaseID string, now time.Time) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.byLease[leaseID]
	if !ok {
		return false
	}
	t.deadline = now.Add(q.cfg.leaseTTL())
	return true
}

// complete records one finished attempt and returns the acknowledgement
// status. Completion is accepted for any live task regardless of lease
// state — first result wins, so a worker finishing after its lease
// expired still saves the re-run if it gets there first.
func (q *queue) complete(req *CompleteRequest, now time.Time) string {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tasks[req.TaskID]
	if !ok {
		return CompleteDropped
	}
	if t.state == taskDone {
		if fingerprint(req.Result) != t.resultFP {
			q.metrics.resultMismatch()
		} else {
			q.metrics.duplicate()
		}
		return CompleteDuplicate
	}
	if t.leaseID != "" {
		delete(q.byLease, t.leaseID)
		t.leaseID = ""
	}
	delete(q.pending, t.id)
	dur := time.Duration(req.DurationMS * float64(time.Millisecond))

	if req.Error != nil {
		t.attempt++
		if t.attempt >= q.cfg.maxAttempts() {
			q.failLocked(t, fmt.Errorf("fabric: task failed after %d attempts (worker %s): %w",
				t.attempt, req.Worker, req.Error.Err()))
			return CompleteAccepted
		}
		q.requeueLocked(t, now, req.Worker, req.Error.Message, dur)
		return CompleteRequeued
	}

	t.state = taskDone
	t.resultFP = fingerprint(req.Result)
	b := t.batch
	b.results[t.index] = req.Result
	b.remaining--
	q.metrics.taskDone(req.Worker, dur)
	if b.observer != nil {
		b.observer(TaskEvent{Index: t.index, Worker: req.Worker, Duration: dur})
	}
	if b.remaining == 0 && b.err == nil {
		close(b.done)
	}
	return CompleteAccepted
}

// requeueLocked puts a task back in the pending set behind a jittered
// exponential backoff gate.
func (q *queue) requeueLocked(t *task, now time.Time, worker, why string, dur time.Duration) {
	t.state = taskPending
	t.worker = ""
	t.notBefore = now.Add(backoff(t.attempt-1, q.cfg.retryBase(), q.cfg.leaseTTL()))
	q.pending[t.id] = t
	q.metrics.requeued()
	if t.batch.observer != nil {
		t.batch.observer(TaskEvent{Index: t.index, Worker: worker, Duration: dur, Requeued: true, Err: why})
	}
}

// failLocked permanently fails a task's batch and withdraws the batch's
// other tasks.
func (q *queue) failLocked(t *task, err error) {
	b := t.batch
	q.metrics.taskFailed()
	for id, bt := range q.tasks {
		if bt.batch != b {
			continue
		}
		delete(q.tasks, id)
		delete(q.pending, id)
		if bt.leaseID != "" {
			delete(q.byLease, bt.leaseID)
		}
	}
	if b.err == nil {
		b.err = err
		close(b.done)
	}
}

// reap expires overdue leases: each costs an attempt (a crash-looping
// task stays bounded) and re-enqueues or, out of attempts, fails the
// batch with the lost worker named.
func (q *queue) reap(now time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(now)
}

func (q *queue) reapLocked(now time.Time) {
	for leaseID, t := range q.byLease {
		if now.Before(t.deadline) {
			continue
		}
		delete(q.byLease, leaseID)
		worker := t.worker
		t.leaseID, t.worker = "", ""
		t.attempt++
		q.metrics.leaseExpired()
		if t.attempt >= q.cfg.maxAttempts() {
			q.failLocked(t, fmt.Errorf("fabric: lease expired after %d attempts (last worker %s)",
				t.attempt, worker))
			continue
		}
		q.requeueLocked(t, now, worker, "lease expired", 0)
	}
}

// depth reports the pending and leased task counts.
func (q *queue) depth() (pending, leased int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending), len(q.byLease)
}

// fingerprint hashes a result payload for idempotent-completion dedup.
func fingerprint(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data) //nolint:errcheck // fnv never fails
	return h.Sum64()
}
