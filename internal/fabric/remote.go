package fabric

import (
	"bytes"
	"context"
	"io"
	"net/http"
	neturl "net/url"
	"time"
)

// RemoteCache implements diskcache.Remote over the coordinator's bundle
// endpoints: local cache misses fetch from the coordinator, local
// computes push back, so the fleet shares one artifact namespace. Both
// directions are best-effort — every call carries the worker's root
// context plus a per-request deadline, transient failures retry with
// jittered backoff, and a final failure is just a cache miss.
type RemoteCache struct {
	base    string
	client  *http.Client
	ctx     context.Context
	timeout time.Duration
	retries int
}

// NewRemoteCache builds the bundle tier client. ctx is the worker's
// root context: cancelling it aborts in-flight transfers immediately,
// so shutdown never waits on the network.
func NewRemoteCache(ctx context.Context, base string, client *http.Client) *RemoteCache {
	if client == nil {
		client = http.DefaultClient
	}
	return &RemoteCache{base: base, client: client, ctx: ctx, timeout: 15 * time.Second, retries: 2}
}

// Fetch gets one bundle frame from the coordinator. false means the
// coordinator doesn't have it (or is unreachable) — either way a local
// recompute follows and Push will heal the gap.
func (r *RemoteCache) Fetch(name string) ([]byte, bool) {
	url := r.base + "/fabric/v1/bundles/" + name
	for attempt := 0; ; attempt++ {
		data, code, err := r.roundTrip(http.MethodGet, url, nil)
		switch {
		case err == nil && code == http.StatusOK:
			return data, true
		case err == nil && code == http.StatusNotFound:
			return nil, false
		}
		if attempt >= r.retries || r.ctx.Err() != nil {
			return nil, false
		}
		sleep(r.ctx, backoff(attempt, 50*time.Millisecond, time.Second))
	}
}

// Push publishes one locally computed bundle frame. Failures are
// swallowed after bounded retries: the worst case is a sibling
// recomputing the artifact.
func (r *RemoteCache) Push(name string, data []byte) {
	url := r.base + "/fabric/v1/bundles/" + name
	for attempt := 0; ; attempt++ {
		_, code, err := r.roundTrip(http.MethodPut, url, data)
		if err == nil && (code == http.StatusNoContent || code == http.StatusBadRequest) {
			// 400 means the coordinator rejected the frame as corrupt;
			// retrying the same bytes cannot help.
			return
		}
		if attempt >= r.retries || r.ctx.Err() != nil {
			return
		}
		sleep(r.ctx, backoff(attempt, 50*time.Millisecond, time.Second))
	}
}

// FetchProfile gets a shared training profile from the coordinator's
// exchange. Implements ProfileStore.
func (r *RemoteCache) FetchProfile(key string) ([]byte, bool) {
	url := r.base + "/fabric/v1/profiles/" + neturl.PathEscape(key)
	for attempt := 0; ; attempt++ {
		data, code, err := r.roundTrip(http.MethodGet, url, nil)
		switch {
		case err == nil && code == http.StatusOK:
			return data, true
		case err == nil && code == http.StatusNotFound:
			return nil, false
		}
		if attempt >= r.retries || r.ctx.Err() != nil {
			return nil, false
		}
		sleep(r.ctx, backoff(attempt, 50*time.Millisecond, time.Second))
	}
}

// PushProfile publishes a locally computed training profile.
func (r *RemoteCache) PushProfile(key string, data []byte) {
	url := r.base + "/fabric/v1/profiles/" + neturl.PathEscape(key)
	for attempt := 0; ; attempt++ {
		_, code, err := r.roundTrip(http.MethodPut, url, data)
		if err == nil && (code == http.StatusNoContent || code == http.StatusBadRequest) {
			return
		}
		if attempt >= r.retries || r.ctx.Err() != nil {
			return
		}
		sleep(r.ctx, backoff(attempt, 50*time.Millisecond, time.Second))
	}
}

func (r *RemoteCache) roundTrip(method, url string, body []byte) ([]byte, int, error) {
	cctx, cancel := context.WithTimeout(r.ctx, r.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(cctx, method, url, rd)
	if err != nil {
		return nil, 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBundleBytes))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return data, resp.StatusCode, nil
}
