package fabric

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"pathflow/internal/engine/diskcache"
)

// maxBundleBytes bounds one pushed bundle frame. Real bundles are far
// smaller; the cap only stops a broken peer from streaming unbounded
// bytes into memory.
const maxBundleBytes = 1 << 28

// maxProfiles bounds the coordinator's in-memory training-profile
// exchange. One entry per distinct target; past the cap new profiles
// are simply not retained (the exchange is a best-effort cache — a
// worker that misses recomputes).
const maxProfiles = 256

// ProfileStore is the worker-side client of the coordinator's
// training-profile exchange. Like the bundle tier it is best-effort:
// a failed Fetch is a recompute, a failed Push costs a sibling the
// same recompute.
type ProfileStore interface {
	FetchProfile(key string) ([]byte, bool)
	PushProfile(key string, data []byte)
}

// Coordinator owns the task queue, the bundle-exchange endpoints, and
// the training-profile exchange. It is mounted on the serving layer's
// mux and fed batches by the distributed sweep path.
type Coordinator struct {
	cfg     Config
	q       *queue
	store   *diskcache.Store // bundle tier; nil = scheduling only
	metrics *Metrics

	profMu   sync.Mutex
	profiles map[string][]byte
}

// NewCoordinator builds a coordinator over the given bundle store
// (usually the serving engine's own disk store; nil disables bundle
// exchange — workers then need a shared -cachedir).
func NewCoordinator(cfg Config, store *diskcache.Store) *Coordinator {
	m := NewMetrics()
	return &Coordinator{cfg: cfg, q: newQueue(cfg, m), store: store, metrics: m,
		profiles: map[string][]byte{}}
}

// Mount registers the fabric's HTTP surface on mux:
//
//	POST /fabric/v1/lease          lease the best ready task
//	POST /fabric/v1/heartbeat      keep a lease alive
//	POST /fabric/v1/complete       report a finished attempt
//	GET  /fabric/v1/bundles/{name} fetch a content-addressed bundle
//	PUT  /fabric/v1/bundles/{name} publish a bundle
//	GET  /fabric/v1/profiles/{key} fetch a shared training profile
//	PUT  /fabric/v1/profiles/{key} publish a training profile
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /fabric/v1/lease", c.handleLease)
	mux.HandleFunc("POST /fabric/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fabric/v1/complete", c.handleComplete)
	mux.HandleFunc("GET /fabric/v1/bundles/{name}", c.handleBundleGet)
	mux.HandleFunc("PUT /fabric/v1/bundles/{name}", c.handleBundlePut)
	mux.HandleFunc("GET /fabric/v1/profiles/{key}", c.handleProfileGet)
	mux.HandleFunc("PUT /fabric/v1/profiles/{key}", c.handleProfilePut)
}

// Submit enqueues one batch of tasks. The observer (optional) receives
// completion and requeue events as they happen.
func (c *Coordinator) Submit(specs []TaskSpec, observer func(TaskEvent)) *Batch {
	return c.q.submit(specs, observer)
}

// Depth reports the queue's pending and leased task counts.
func (c *Coordinator) Depth() (pending, leased int) { return c.q.depth() }

// WriteMetrics renders the fabric metric families in Prometheus text
// format.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	pending, leased := c.q.depth()
	c.metrics.WriteTo(w, pending, leased)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeInto(w, r, &req) {
		return
	}
	t, wait := c.q.lease(req.Worker, time.Now())
	if t == nil {
		retry := wait
		if retry <= 0 {
			retry = 200 * time.Millisecond
		}
		writeFabricJSON(w, http.StatusOK, &LeaseResponse{RetryMS: int64(retry / time.Millisecond)})
		return
	}
	writeFabricJSON(w, http.StatusOK, &LeaseResponse{
		TaskID:     t.id,
		LeaseID:    t.leaseID,
		Spec:       t.spec,
		Attempt:    t.attempt,
		LeaseTTLMS: int64(c.cfg.leaseTTL() / time.Millisecond),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if !c.q.heartbeat(req.LeaseID, time.Now()) {
		http.Error(w, "lease gone", http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeInto(w, r, &req) {
		return
	}
	status := c.q.complete(&req, time.Now())
	writeFabricJSON(w, http.StatusOK, &CompleteResponse{Status: status})
}

func (c *Coordinator) handleBundleGet(w http.ResponseWriter, r *http.Request) {
	if c.store == nil {
		http.Error(w, "no bundle store", http.StatusServiceUnavailable)
		return
	}
	data, ok := c.store.ReadBundle(r.PathValue("name"))
	c.metrics.bundleGet(ok)
	if !ok {
		http.Error(w, "no such bundle", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck // client gone is the client's problem
}

func (c *Coordinator) handleBundlePut(w http.ResponseWriter, r *http.Request) {
	if c.store == nil {
		http.Error(w, "no bundle store", http.StatusServiceUnavailable)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBundleBytes))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.store.AdoptBundle(r.PathValue("name"), data); err != nil {
		c.metrics.bundlePut(false)
		http.Error(w, "rejected: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.metrics.bundlePut(true)
	w.WriteHeader(http.StatusNoContent)
}

// validProfileKey bounds the exchange's map keys: workers send a fixed
// 16-hex-digit content hash, so anything longer is a broken peer.
func validProfileKey(key string) bool {
	return key != "" && len(key) <= 64
}

// SeedProfile publishes a training profile into the exchange from
// inside the coordinator process — the serving layer trains each sweep
// target once (it needs the path counts for cost prediction anyway) and
// seeds it here so no worker ever pays a training run. First write
// wins, same as a worker push.
func (c *Coordinator) SeedProfile(key string, data []byte) {
	if !validProfileKey(key) {
		return
	}
	c.profMu.Lock()
	if _, exists := c.profiles[key]; !exists && len(c.profiles) < maxProfiles {
		c.profiles[key] = data
		c.metrics.profilePut()
	}
	c.profMu.Unlock()
}

func (c *Coordinator) handleProfileGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	c.profMu.Lock()
	data, ok := c.profiles[key]
	c.profMu.Unlock()
	c.metrics.profileGet(ok)
	if !ok {
		http.Error(w, "no such profile", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // client gone is the client's problem
}

func (c *Coordinator) handleProfilePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validProfileKey(key) {
		http.Error(w, "bad profile key", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBundleBytes))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.profMu.Lock()
	// First write wins (the profile is deterministic, so all writers
	// agree); past the cap new keys are dropped, not stored.
	if _, exists := c.profiles[key]; !exists && len(c.profiles) < maxProfiles {
		c.profiles[key] = data
		c.metrics.profilePut()
	}
	c.profMu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// decodeInto parses a JSON request body, answering 400 on malformed
// input.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeFabricJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}
