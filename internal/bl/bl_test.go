// The external test package breaks the import cycle with paperex, which
// itself imports bl to build the paper's Figure 2 profile.
package bl_test

import (
	"strings"
	"testing"

	. "pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/interp"
	"pathflow/internal/lang"
	"pathflow/internal/paperex"
)

func TestRecordingEdgesExample(t *testing.T) {
	_, _, edges := paperex.Build()
	f, _, _ := paperex.Build()
	R := RecordingEdges(f.G)
	want := paperex.Recording(edges)
	if len(R) != len(want) {
		t.Fatalf("recording edges = %d, want %d", len(R), len(want))
	}
	for e := range want {
		if !R[e] {
			t.Errorf("edge %d missing from recording set", e)
		}
	}
	if !AcyclicCheck(f.G, R) {
		t.Error("recording edges do not acyclicize the example")
	}
}

func TestPathsOfExampleValidate(t *testing.T) {
	f, _, edges := paperex.Build()
	R := paperex.Recording(edges)
	for i, p := range paperex.Paths(edges) {
		if err := p.Validate(f.G, R); err != nil {
			t.Errorf("path %d: %v", i+1, err)
		}
	}
}

func TestPathStringAndVertices(t *testing.T) {
	f, nodes, edges := paperex.Build()
	p := paperex.Paths(edges)[0]
	want := "[•,A,B,C,E,F,H,I,exit]"
	if got := p.String(f.G); got != want {
		t.Errorf("String = %s, want %s", got, want)
	}
	vs := p.Vertices(f.G)
	if vs[0] != nodes.A || vs[len(vs)-1] != nodes.Exit {
		t.Errorf("vertices = %v", vs)
	}
	if p.Start(f.G) != nodes.A || p.End(f.G) != nodes.Exit {
		t.Errorf("start/end = %d/%d", p.Start(f.G), p.End(f.G))
	}
}

func TestPathNumInstrs(t *testing.T) {
	f, _, edges := paperex.Build()
	ps := paperex.Paths(edges)
	// p1: A(2) B(1) C(1) E(1) F(1) H(4) I(1), Exit excluded = 11
	if got := ps[0].NumInstrs(f.G); got != 11 {
		t.Errorf("p1 instrs = %d, want 11", got)
	}
	// p3: B(1) D(1) E(1) G(1) H(4), final B excluded = 8
	if got := ps[2].NumInstrs(f.G); got != 8 {
		t.Errorf("p3 instrs = %d, want 8", got)
	}
}

func TestPathValidateErrors(t *testing.T) {
	f, _, edges := paperex.Build()
	R := paperex.Recording(edges)
	cases := []struct {
		name string
		p    Path
		want string
	}{
		{"empty", Path{}, "empty path"},
		{"no final recording", Path{Edges: []cfg.EdgeID{edges["A->B"], edges["B->C"]}}, "does not end"},
		{"interior recording", Path{Edges: []cfg.EdgeID{edges["H->B"], edges["B->D"], edges["D->E"], edges["E->G"], edges["G->H"], edges["H->B"]}}, "interior recording"},
		{"disconnected", Path{Edges: []cfg.EdgeID{edges["A->B"], edges["D->E"], edges["E->F"], edges["F->H"], edges["H->B"]}}, "disconnected"},
		{"bad start", Path{Edges: []cfg.EdgeID{edges["D->E"], edges["E->F"], edges["F->H"], edges["H->B"]}}, "not a recording-edge target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate(f.G, R)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// collectExampleProfile interprets the example under a Tracker, running
// each of the three run types the right number of times.
func collectExampleProfile(t *testing.T) (*cfg.Func, map[string]cfg.EdgeID, *Profile) {
	t.Helper()
	f, _, edges := paperex.Build()
	prog := cfg.NewProgram()
	prog.Add(f)
	tr := NewTracker(f, RecordingEdges(f.G))
	runOnce := func(kind int) {
		_, err := interp.Run(prog, interp.Options{
			Input:   &interp.SliceInput{Values: paperex.RunInputs(kind)},
			OnEnter: func(*cfg.Func) { tr.Enter() },
			OnEdge:  func(_ *cfg.Func, e cfg.EdgeID) { tr.Edge(e) },
			OnExit:  func(*cfg.Func) { tr.Exit() },
		})
		if err != nil {
			t.Fatalf("run kind %d: %v", kind, err)
		}
	}
	for i := 0; i < paperex.CountRun1; i++ {
		runOnce(1)
	}
	for i := 0; i < paperex.CountRun2; i++ {
		runOnce(2)
	}
	for i := 0; i < paperex.CountRun3; i++ {
		runOnce(3)
	}
	return f, edges, tr.Profile()
}

func TestTrackerReproducesFigure2(t *testing.T) {
	f, edges, got := collectExampleProfile(t)
	want := paperex.Profile(edges)
	if err := got.Validate(f.G); err != nil {
		t.Fatalf("tracked profile invalid: %v", err)
	}
	if !got.Equal(want) {
		t.Fatalf("tracked profile differs from Figure 2:\ngot:\n%swant:\n%s",
			got.String(f.G), want.String(f.G))
	}
	if got.NumPaths() != 4 {
		t.Errorf("distinct paths = %d, want 4", got.NumPaths())
	}
}

func TestInstrumentedMatchesTracker(t *testing.T) {
	f, _, want := collectExampleProfile(t)
	prog := cfg.NewProgram()
	prog.Add(f)
	ip, err := NewInstrumented(f, RecordingEdges(f.G))
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func(kind, times int) {
		for i := 0; i < times; i++ {
			_, err := interp.Run(prog, interp.Options{
				Input:   &interp.SliceInput{Values: paperex.RunInputs(kind)},
				OnEnter: func(*cfg.Func) { ip.Enter() },
				OnEdge:  func(_ *cfg.Func, e cfg.EdgeID) { ip.Edge(e) },
				OnExit:  func(*cfg.Func) { ip.Exit() },
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	runOnce(1, paperex.CountRun1)
	runOnce(2, paperex.CountRun2)
	runOnce(3, paperex.CountRun3)
	got, err := ip.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("instrumented profile differs from tracker:\ngot:\n%swant:\n%s",
			got.String(f.G), want.String(f.G))
	}
}

func TestNumberingRoundTrip(t *testing.T) {
	f, _, _ := paperex.Build()
	R := RecordingEdges(f.G)
	num, err := NewNumbering(f.G, R)
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate every (start, id) pair and round-trip through PathID.
	starts := map[cfg.NodeID]bool{}
	for e := range R {
		starts[f.G.Edge(e).To] = true
	}
	paths := 0
	for s := range starts {
		for id := int64(0); id < num.TotalPaths(s); id++ {
			p, err := num.Regenerate(s, id)
			if err != nil {
				t.Fatalf("Regenerate(%d,%d): %v", s, id, err)
			}
			if err := p.Validate(f.G, R); err != nil {
				t.Fatalf("Regenerate(%d,%d) invalid: %v", s, id, err)
			}
			s2, id2, err := num.PathID(p)
			if err != nil {
				t.Fatalf("PathID: %v", err)
			}
			if s2 != s || id2 != id {
				t.Fatalf("round trip (%d,%d) -> (%d,%d)", s, id, s2, id2)
			}
			paths++
		}
	}
	if paths != 16 {
		t.Errorf("total enumerable paths = %d, want 16", paths)
	}
	if got := num.PotentialPaths(); got != 16 {
		t.Errorf("PotentialPaths = %d, want 16", got)
	}
}

func TestNumberingRejectsBadRecordingSet(t *testing.T) {
	f, _, edges := paperex.Build()
	R := paperex.Recording(edges)
	delete(R, edges["H->B"]) // leaves the loop intact: not acyclic
	if _, err := NewNumbering(f.G, R); err == nil {
		t.Fatal("NewNumbering accepted a non-acyclicizing recording set")
	}
}

func TestRegenerateRejectsBadIDs(t *testing.T) {
	f, nodes, _ := paperex.Build()
	num, err := NewNumbering(f.G, RecordingEdges(f.G))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := num.Regenerate(nodes.A, -1); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := num.Regenerate(nodes.A, num.TotalPaths(nodes.A)); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestProfileProgramOnLangSource(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	i = 0;
	s = 0;
	while (i < 50) {
		if (i % 3 == 0) { s = s + 1; }
		else { s = s + 2; }
		i = i + 1;
	}
	print(s);
}`)
	if err != nil {
		t.Fatal(err)
	}
	pp, res, err := ProfileProgram(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr := pp.Funcs["main"]
	g := prog.Main().G
	if err := pr.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Every dynamic instruction belongs to exactly one path traversal.
	if got := pr.DynInstrs(g); got != res.DynInstrs {
		t.Errorf("profile DynInstrs = %d, interpreter = %d", got, res.DynInstrs)
	}
	// 51 loop-head visits: 50 iterations end with the retreating edge,
	// plus the final run to exit and the run from entry.
	if pr.TotalCount() != 51 {
		t.Errorf("path traversals = %d, want 51", pr.TotalCount())
	}
}

func TestProfileProgramRecursive(t *testing.T) {
	prog, err := lang.Compile(`
func fact(n) {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}
func main() { print(fact(6)); }`)
	if err != nil {
		t.Fatal(err)
	}
	pp, res, err := ProfileProgram(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Funcs["fact"].G
	pr := pp.Funcs["fact"]
	if err := pr.Validate(g); err != nil {
		t.Fatal(err)
	}
	total := pp.Funcs["main"].DynInstrs(prog.Funcs["main"].G) + pr.DynInstrs(g)
	if total != res.DynInstrs {
		t.Errorf("profiles cover %d instrs, run executed %d", total, res.DynInstrs)
	}
	// fact has no loop, so each activation is one path from entry to
	// exit; 6 activations.
	if pr.TotalCount() != 6 {
		t.Errorf("fact path traversals = %d, want 6", pr.TotalCount())
	}
}

func TestSortedEntriesOrder(t *testing.T) {
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	es := pr.SortedEntries(f.G)
	for i := 1; i < len(es); i++ {
		wi := es[i-1].Count * int64(es[i-1].Path.NumInstrs(f.G))
		wj := es[i].Count * int64(es[i].Path.NumInstrs(f.G))
		if wi < wj {
			t.Fatalf("entries out of order at %d: %d < %d", i, wi, wj)
		}
	}
	// p3 has weight 100*8=800, p1 70*11=770, p2 30*9, p4 30*10.
	if es[0].Count != 100 {
		t.Errorf("hottest path count = %d, want 100 (p3)", es[0].Count)
	}
}

func TestTrimmed(t *testing.T) {
	_, _, edges := paperex.Build()
	p := paperex.Paths(edges)[0]
	tr := p.Trimmed()
	if tr.Len() != p.Len()-1 {
		t.Errorf("trimmed len = %d, want %d", tr.Len(), p.Len()-1)
	}
	if (Path{}).Trimmed().Len() != 0 {
		t.Error("trimming the empty path should be empty")
	}
}
