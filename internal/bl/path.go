// Package bl implements Ball-Larus path profiling (Ball & Larus, MICRO
// 1996), the profile substrate of Ammons & Larus (PLDI 1998).
//
// A Ball-Larus path (paper Definition 7) is a placeholder • — standing for
// "some recording edge" — followed by a path in the CFG from the target of
// a recording edge to the target of another recording edge, containing no
// recording edge except its last edge. The minimal recording-edge set R
// (edges from entry, edges into exit, retreating edges) makes the graph
// acyclic when removed, so the set of Ball-Larus paths is finite.
//
// The package provides two independent profilers that are cross-checked in
// tests: a direct tracker that carves the interpreter's edge trace at
// recording edges, and the efficient instrumentation scheme of the MICRO
// '96 paper (per-edge increments on an acyclicized graph, with path
// regeneration from compact integer path ids).
package bl

import (
	"fmt"
	"strings"

	"pathflow/internal/cfg"
)

// Path is one Ball-Larus path, stored as its edge sequence e1..ek. The
// leading • is implicit; ek is the path's terminating recording edge; no
// other ei is a recording edge.
type Path struct {
	Edges []cfg.EdgeID
}

// Key returns a canonical map key for the path.
func (p Path) Key() string {
	var b strings.Builder
	for i, e := range p.Edges {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", e)
	}
	return b.String()
}

// Len returns the number of edges (excluding the • placeholder).
func (p Path) Len() int { return len(p.Edges) }

// Start returns the first vertex of the path (the target of the • edge).
func (p Path) Start(g *cfg.Graph) cfg.NodeID {
	if len(p.Edges) == 0 {
		return cfg.NoNode
	}
	return g.Edge(p.Edges[0]).From
}

// End returns the final vertex (the target of the closing recording edge).
func (p Path) End(g *cfg.Graph) cfg.NodeID {
	if len(p.Edges) == 0 {
		return cfg.NoNode
	}
	return g.Edge(p.Edges[len(p.Edges)-1]).To
}

// Vertices returns the full vertex sequence v0..vk of the path, where v0
// is the target of the • recording edge.
func (p Path) Vertices(g *cfg.Graph) []cfg.NodeID {
	if len(p.Edges) == 0 {
		return nil
	}
	vs := make([]cfg.NodeID, 0, len(p.Edges)+1)
	vs = append(vs, g.Edge(p.Edges[0]).From)
	for _, e := range p.Edges {
		vs = append(vs, g.Edge(e).To)
	}
	return vs
}

// NumInstrs returns the number of IR instructions one traversal of the
// path executes. The final vertex is excluded: when paths chain, the end
// vertex of one path is the start vertex of the next, and its instructions
// are charged to that next path. Summing NumInstrs×frequency over a
// profile therefore reproduces the run's dynamic instruction count (the
// quantity the paper's coverage parameter CA is measured against).
func (p Path) NumInstrs(g *cfg.Graph) int {
	vs := p.Vertices(g)
	if len(vs) == 0 {
		return 0
	}
	n := 0
	for _, v := range vs[:len(vs)-1] {
		n += len(g.Node(v).Instrs)
	}
	return n
}

// Trimmed returns the path without its final recording edge — the form the
// qualification automaton's keywords take (paper §3: "Trim the final
// recording edge from each hot path").
func (p Path) Trimmed() Path {
	if len(p.Edges) == 0 {
		return Path{}
	}
	return Path{Edges: p.Edges[:len(p.Edges)-1]}
}

// String renders the path as the paper writes them: a • followed by
// vertex names.
func (p Path) String(g *cfg.Graph) string {
	var b strings.Builder
	b.WriteString("[•")
	for _, v := range p.Vertices(g) {
		b.WriteString(",")
		n := g.Node(v)
		if n.Name != "" {
			b.WriteString(n.Name)
		} else {
			fmt.Fprintf(&b, "n%d", v)
		}
	}
	b.WriteString("]")
	return b.String()
}

// Validate checks that the path satisfies Definition 7 with respect to the
// recording-edge set R: edges are connected, only the final edge is
// recording, and the path starts at a recording-edge target.
func (p Path) Validate(g *cfg.Graph, R map[cfg.EdgeID]bool) error {
	if len(p.Edges) == 0 {
		return fmt.Errorf("bl: empty path")
	}
	for i, e := range p.Edges {
		last := i == len(p.Edges)-1
		if R[e] != last {
			if last {
				return fmt.Errorf("bl: path %s does not end with a recording edge", p.Key())
			}
			return fmt.Errorf("bl: path %s has interior recording edge %d", p.Key(), e)
		}
		if i > 0 && g.Edge(e).From != g.Edge(p.Edges[i-1]).To {
			return fmt.Errorf("bl: path %s is disconnected at position %d", p.Key(), i)
		}
	}
	start := p.Start(g)
	startOK := false
	for r := range R {
		if g.Edge(r).To == start {
			startOK = true
			break
		}
	}
	if !startOK {
		return fmt.Errorf("bl: path %s starts at %d, not a recording-edge target", p.Key(), start)
	}
	return nil
}
