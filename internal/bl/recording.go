package bl

import "pathflow/internal/cfg"

// RecordingEdges returns the minimal recording-edge set of the paper's
// §2.3: all edges leaving the entry vertex, all edges entering the exit
// vertex, and all retreating edges of the deterministic depth-first
// traversal. Removing these edges leaves the reachable graph acyclic.
//
// Callers may add further edges to the returned set; every algorithm in
// this module works with any superset of the minimal set.
func RecordingEdges(g *cfg.Graph) map[cfg.EdgeID]bool {
	R := map[cfg.EdgeID]bool{}
	for _, e := range g.Node(g.Entry).Out {
		R[e] = true
	}
	for _, e := range g.Node(g.Exit).In {
		R[e] = true
	}
	dfs := g.DepthFirst()
	for e := range dfs.Retreating {
		R[e] = true
	}
	return R
}

// AcyclicCheck reports whether removing R leaves the reachable part of g
// acyclic. It is used by tests and by Numbering to validate its input.
func AcyclicCheck(g *cfg.Graph, R map[cfg.EdgeID]bool) bool {
	// Kahn's algorithm restricted to reachable nodes and non-R edges.
	dfs := g.DepthFirst()
	indeg := make([]int, g.NumNodes())
	nodes := 0
	for _, n := range g.Nodes {
		if !dfs.Reachable(n.ID) {
			continue
		}
		nodes++
		for _, eid := range n.In {
			e := g.Edge(eid)
			if R[eid] || !dfs.Reachable(e.From) {
				continue
			}
			indeg[n.ID]++
		}
	}
	var queue []cfg.NodeID
	for _, n := range g.Nodes {
		if dfs.Reachable(n.ID) && indeg[n.ID] == 0 {
			queue = append(queue, n.ID)
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, eid := range g.Node(n).Out {
			e := g.Edge(eid)
			if R[eid] || !dfs.Reachable(e.To) {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	return seen == nodes
}
