package bl

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"pathflow/internal/cfg"
)

// Profile serialization. The paper's workflow separates the profiled
// training run (the PP pass) from the analysis run (the PW pass), so
// profiles must survive as artifacts between compiler invocations. Paths
// are stored as edge-ID sequences, which are only meaningful against the
// exact CFG they were collected on — a structural fingerprint guards
// against replaying a profile onto a different build of the program.

// profileJSON is the on-disk form of one function's profile.
type profileJSON struct {
	Func      string       `json:"func"`
	Recording []cfg.EdgeID `json:"recording"`
	Paths     []pathJSON   `json:"paths"`
}

type pathJSON struct {
	Edges []cfg.EdgeID `json:"edges"`
	Count int64        `json:"count"`
}

// programProfileJSON is the on-disk form of a program profile.
type programProfileJSON struct {
	Version     int           `json:"version"`
	Fingerprint uint64        `json:"fingerprint"`
	Funcs       []profileJSON `json:"funcs"`
}

// serializationVersion guards the format.
const serializationVersion = 1

// Fingerprint computes a structural hash of a program's CFGs: node
// terminators, instruction opcodes and edge endpoints, per function in
// declaration order. A profile only replays onto a program with the same
// fingerprint.
func Fingerprint(prog *cfg.Program) uint64 {
	h := fnv.New64a()
	w := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	for _, name := range prog.Order {
		f := prog.Funcs[name]
		w("func %s vars=%d\n", name, f.NumVars())
		for _, nd := range f.G.Nodes {
			w("n%d k%d c%d r%d:", nd.ID, nd.Kind, nd.Cond, nd.Ret)
			for i := range nd.Instrs {
				in := &nd.Instrs[i]
				w(" %d/%d/%d/%d/%d/%s", in.Op, in.Dst, in.A, in.B, in.K, in.Callee)
			}
			w("\n")
		}
		for _, e := range f.G.Edges {
			w("e%d %d->%d\n", e.ID, e.From, e.To)
		}
	}
	return h.Sum64()
}

// Save writes the program profile to w as JSON, bound to prog's
// fingerprint.
func (pp *ProgramProfile) Save(w io.Writer, prog *cfg.Program) error {
	out := programProfileJSON{
		Version:     serializationVersion,
		Fingerprint: Fingerprint(prog),
	}
	names := make([]string, 0, len(pp.Funcs))
	for name := range pp.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pr := pp.Funcs[name]
		pj := profileJSON{Func: name, Recording: cfg.SortedEdgeIDs(pr.R)}
		keys := make([]string, 0, len(pr.Entries))
		for k := range pr.Entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := pr.Entries[k]
			pj.Paths = append(pj.Paths, pathJSON{Edges: e.Path.Edges, Count: e.Count})
		}
		out.Funcs = append(out.Funcs, pj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&out)
}

// Load reads a program profile from r and validates it against prog:
// the fingerprint must match and every path must satisfy Definition 7.
func Load(r io.Reader, prog *cfg.Program) (*ProgramProfile, error) {
	var in programProfileJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("bl: decode profile: %w", err)
	}
	if in.Version != serializationVersion {
		return nil, fmt.Errorf("bl: profile version %d, want %d", in.Version, serializationVersion)
	}
	if got := Fingerprint(prog); in.Fingerprint != got {
		return nil, fmt.Errorf("bl: profile fingerprint %x does not match program %x — was it collected on a different build?", in.Fingerprint, got)
	}
	pp := NewProgramProfile()
	for _, pj := range in.Funcs {
		fn, ok := prog.Funcs[pj.Func]
		if !ok {
			return nil, fmt.Errorf("bl: profile mentions unknown function %q", pj.Func)
		}
		R := map[cfg.EdgeID]bool{}
		for _, e := range pj.Recording {
			if int(e) >= fn.G.NumEdges() || e < 0 {
				return nil, fmt.Errorf("bl: %s: recording edge %d out of range", pj.Func, e)
			}
			R[e] = true
		}
		pr := NewProfile(pj.Func, R)
		for _, p := range pj.Paths {
			path := Path{Edges: p.Edges}
			if err := path.Validate(fn.G, R); err != nil {
				return nil, fmt.Errorf("bl: %s: %w", pj.Func, err)
			}
			if p.Count < 0 {
				return nil, fmt.Errorf("bl: %s: negative count", pj.Func)
			}
			pr.Add(path, p.Count)
		}
		pp.Funcs[pj.Func] = pr
	}
	return pp, nil
}
