package bl_test

import (
	"bytes"
	"strings"
	"testing"

	. "pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/interp"
	"pathflow/internal/lang"
	"pathflow/internal/paperex"
)

func exampleProgramProfile(t *testing.T) (*cfg.Program, *ProgramProfile) {
	t.Helper()
	f, _, edges := paperex.Build()
	prog := cfg.NewProgram()
	prog.Add(f)
	pp := NewProgramProfile()
	pp.Funcs["example"] = paperex.Profile(edges)
	return prog, pp
}

func TestSaveLoadRoundTrip(t *testing.T) {
	prog, pp := exampleProgramProfile(t)
	var buf bytes.Buffer
	if err := pp.Save(&buf, prog); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Funcs["example"].Equal(pp.Funcs["example"]) {
		t.Error("round trip changed the profile")
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	prog, pp := exampleProgramProfile(t)
	var a, b bytes.Buffer
	if err := pp.Save(&a, prog); err != nil {
		t.Fatal(err)
	}
	if err := pp.Save(&b, prog); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("serialization not deterministic")
	}
}

func TestLoadRejectsWrongProgram(t *testing.T) {
	prog, pp := exampleProgramProfile(t)
	var buf bytes.Buffer
	if err := pp.Save(&buf, prog); err != nil {
		t.Fatal(err)
	}
	other, err := lang.Compile(`func main() { print(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(&buf, other)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("err = %v, want fingerprint mismatch", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	prog, _ := exampleProgramProfile(t)
	cases := []string{
		`not json`,
		`{"version": 99, "fingerprint": 0, "funcs": []}`,
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c), prog); err == nil {
			t.Errorf("Load(%q) succeeded", c)
		}
	}
}

func TestLoadRejectsTamperedPaths(t *testing.T) {
	prog, pp := exampleProgramProfile(t)
	var buf bytes.Buffer
	if err := pp.Save(&buf, prog); err != nil {
		t.Fatal(err)
	}
	// Corrupt an edge id inside a path: the path no longer satisfies
	// Definition 7 and must be rejected.
	s := buf.String()
	s = strings.Replace(s, `"edges": [`, `"edges": [4, `, 1)
	if _, err := Load(strings.NewReader(s), prog); err == nil {
		t.Error("tampered profile accepted")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	p1, err := lang.Compile(`func main() { x = 1; print(x); }`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := lang.Compile(`func main() { x = 2; print(x); }`)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := lang.Compile(`func main() { x = 1; print(x); }`)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(p1) == Fingerprint(p2) {
		t.Error("fingerprint ignores constants")
	}
	if Fingerprint(p1) != Fingerprint(p3) {
		t.Error("fingerprint not reproducible")
	}
}

func TestRoundTripFromRealRun(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	i = 0;
	while (i < 30) {
		if (i % 2 == 0) { i = i + 1; } else { i = i + 2; }
	}
	print(i);
}`)
	if err != nil {
		t.Fatal(err)
	}
	pp, _, err := ProfileProgram(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pp.Save(&buf, prog); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, prog)
	if err != nil {
		t.Fatal(err)
	}
	for name := range pp.Funcs {
		if !got.Funcs[name].Equal(pp.Funcs[name]) {
			t.Errorf("round trip changed %s", name)
		}
	}
}
