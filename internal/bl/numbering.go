package bl

import (
	"fmt"
	"math"

	"pathflow/internal/cfg"
)

// Numbering is the Ball-Larus efficient path-profiling scheme: it assigns
// every edge of the acyclicized graph an increment such that summing the
// increments along any Ball-Larus path yields a compact integer that,
// together with the path's start vertex, uniquely identifies the path.
//
// With the recording-edge formulation of the PLDI '98 paper, a Ball-Larus
// path is a DAG path (over non-recording edges) followed by one final
// recording edge. NumPaths(v) counts the path suffixes beginning at v:
//
//	NumPaths(v) = Σ_{(v,w) ∉ R} NumPaths(w) + |{(v,w) ∈ R}|
//
// Non-recording out-edges receive the usual prefix-sum increment Val;
// recording out-edges receive a terminal value TermVal that closes the
// path id.
type Numbering struct {
	G *cfg.Graph
	R map[cfg.EdgeID]bool
	// NumPaths[v] is the number of Ball-Larus path suffixes from v;
	// zero for the exit node and unreachable nodes.
	NumPaths []int64
	// Val[e] is the increment for a non-recording edge, or the terminal
	// value for a recording edge; -1 for edges out of unreachable nodes.
	Val []int64
}

// ErrTooManyPaths reports int64 overflow while counting paths; a graph
// with that many acyclic paths cannot be profiled with this scheme.
var ErrTooManyPaths = fmt.Errorf("bl: path count overflows int64")

// NewNumbering computes the numbering for g under recording-edge set R.
// R must contain at least the minimal set (see RecordingEdges) so that
// the non-recording subgraph is acyclic.
func NewNumbering(g *cfg.Graph, R map[cfg.EdgeID]bool) (*Numbering, error) {
	if !AcyclicCheck(g, R) {
		return nil, fmt.Errorf("bl: recording edges do not acyclicize %s", g.Name)
	}
	dfs := g.DepthFirst()
	n := &Numbering{
		G:        g,
		R:        R,
		NumPaths: make([]int64, g.NumNodes()),
		Val:      make([]int64, g.NumEdges()),
	}
	for i := range n.Val {
		n.Val[i] = -1
	}
	// Process in reverse topological order of the non-recording subgraph.
	order, err := topoOrder(g, R, dfs)
	if err != nil {
		return nil, err
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		var acc int64
		for _, eid := range g.Node(v).Out {
			e := g.Edge(eid)
			n.Val[eid] = acc
			if R[eid] {
				acc++
			} else {
				acc += n.NumPaths[e.To]
				if acc < 0 || acc > math.MaxInt64/2 {
					return nil, ErrTooManyPaths
				}
			}
		}
		n.NumPaths[v] = acc
	}
	return n, nil
}

// topoOrder returns the reachable nodes in a topological order of the
// non-recording subgraph.
func topoOrder(g *cfg.Graph, R map[cfg.EdgeID]bool, dfs *cfg.DFS) ([]cfg.NodeID, error) {
	indeg := make([]int, g.NumNodes())
	for _, e := range g.Edges {
		if R[e.ID] || !dfs.Reachable(e.From) || !dfs.Reachable(e.To) {
			continue
		}
		indeg[e.To]++
	}
	var queue, order []cfg.NodeID
	for _, nd := range g.Nodes {
		if dfs.Reachable(nd.ID) && indeg[nd.ID] == 0 {
			queue = append(queue, nd.ID)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, eid := range g.Node(v).Out {
			e := g.Edge(eid)
			if R[eid] || !dfs.Reachable(e.To) {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != dfs.NumReachable() {
		return nil, fmt.Errorf("bl: non-recording subgraph of %s is cyclic", g.Name)
	}
	return order, nil
}

// PathID computes the (start vertex, id) pair of a Ball-Larus path by
// summing edge values, as the instrumented program would.
func (n *Numbering) PathID(p Path) (cfg.NodeID, int64, error) {
	if err := p.Validate(n.G, n.R); err != nil {
		return cfg.NoNode, 0, err
	}
	var id int64
	for _, e := range p.Edges {
		id += n.Val[e]
	}
	return p.Start(n.G), id, nil
}

// Regenerate reconstructs the unique path with the given start vertex and
// path id — the step a post-processing tool performs to turn the compact
// profile counters back into paths.
func (n *Numbering) Regenerate(start cfg.NodeID, id int64) (Path, error) {
	if start < 0 || int(start) >= n.G.NumNodes() {
		return Path{}, fmt.Errorf("bl: regenerate: start %d out of range", start)
	}
	if id < 0 || id >= n.NumPaths[start] {
		return Path{}, fmt.Errorf("bl: regenerate: id %d out of range [0,%d) at node %d", id, n.NumPaths[start], start)
	}
	var edges []cfg.EdgeID
	v := start
	for {
		nd := n.G.Node(v)
		// Find the out-edge whose value interval contains id. Intervals
		// are in out-slot order: recording edges span exactly one id.
		chosen := cfg.NoEdge
		for i := len(nd.Out) - 1; i >= 0; i-- {
			eid := nd.Out[i]
			if n.Val[eid] <= id {
				chosen = eid
				break
			}
		}
		if chosen == cfg.NoEdge {
			return Path{}, fmt.Errorf("bl: regenerate: no edge at node %d for id %d", v, id)
		}
		edges = append(edges, chosen)
		if n.R[chosen] {
			if id != n.Val[chosen] {
				return Path{}, fmt.Errorf("bl: regenerate: id mismatch at terminal edge %d", chosen)
			}
			return Path{Edges: edges}, nil
		}
		id -= n.Val[chosen]
		v = n.G.Edge(chosen).To
	}
}

// TotalPaths returns the number of distinct Ball-Larus paths starting at v.
func (n *Numbering) TotalPaths(v cfg.NodeID) int64 { return n.NumPaths[v] }

// PotentialPaths returns the total number of distinct Ball-Larus paths of
// the whole graph — the paper's "universe of acyclic paths". Start
// vertices are the targets of recording edges.
func (n *Numbering) PotentialPaths() int64 {
	seen := map[cfg.NodeID]bool{}
	var total int64
	for eid := range n.R {
		t := n.G.Edge(eid).To
		if seen[t] {
			continue
		}
		seen[t] = true
		total += n.NumPaths[t]
		if total < 0 {
			return math.MaxInt64
		}
	}
	return total
}
