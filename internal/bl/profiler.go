package bl

import (
	"fmt"

	"pathflow/internal/cfg"
	"pathflow/internal/interp"
)

// Tracker carves the interpreter's edge trace into Ball-Larus paths
// directly: traversing a recording edge closes the current path and starts
// the next one. It maintains a stack of activation states so recursive
// functions profile correctly.
type Tracker struct {
	g     *cfg.Graph
	prof  *Profile
	stack []trackState
}

type trackState struct {
	started bool
	cur     []cfg.EdgeID
}

// NewTracker returns a tracker for one function.
func NewTracker(fn *cfg.Func, R map[cfg.EdgeID]bool) *Tracker {
	return &Tracker{g: fn.G, prof: NewProfile(fn.Name, R)}
}

// Enter begins a new activation.
func (t *Tracker) Enter() { t.stack = append(t.stack, trackState{}) }

// Edge consumes one traversed edge of the innermost activation.
func (t *Tracker) Edge(e cfg.EdgeID) {
	s := &t.stack[len(t.stack)-1]
	if !s.started {
		// The first edge of an activation leaves Entry, so it is a
		// recording edge; it plays the role of the • placeholder.
		s.started = true
		s.cur = s.cur[:0]
		return
	}
	if t.prof.R[e] {
		edges := make([]cfg.EdgeID, len(s.cur)+1)
		copy(edges, s.cur)
		edges[len(s.cur)] = e
		t.prof.Add(Path{Edges: edges}, 1)
		s.cur = s.cur[:0]
		return
	}
	s.cur = append(s.cur, e)
}

// Exit ends the innermost activation.
func (t *Tracker) Exit() { t.stack = t.stack[:len(t.stack)-1] }

// Profile returns the accumulated profile.
func (t *Tracker) Profile() *Profile { return t.prof }

// Instrumented is the MICRO '96 profiling scheme: it keeps a single
// accumulator per activation, adds the edge value on every non-recording
// edge, and bumps a (start vertex, path id) counter on every recording
// edge — exactly what the instrumentation the paper's PP pass inserts
// would compute at run time.
type Instrumented struct {
	num    *Numbering
	name   string
	counts map[pathKey]int64
	stack  []instState
}

type pathKey struct {
	start cfg.NodeID
	id    int64
}

type instState struct {
	started bool
	start   cfg.NodeID
	acc     int64
}

// NewInstrumented returns an instrumented profiler for one function.
func NewInstrumented(fn *cfg.Func, R map[cfg.EdgeID]bool) (*Instrumented, error) {
	num, err := NewNumbering(fn.G, R)
	if err != nil {
		return nil, err
	}
	return &Instrumented{num: num, name: fn.Name, counts: map[pathKey]int64{}}, nil
}

// Enter begins a new activation.
func (ip *Instrumented) Enter() { ip.stack = append(ip.stack, instState{}) }

// Edge consumes one traversed edge of the innermost activation.
func (ip *Instrumented) Edge(e cfg.EdgeID) {
	s := &ip.stack[len(ip.stack)-1]
	if !s.started {
		s.started = true
		s.start = ip.num.G.Edge(e).To
		s.acc = 0
		return
	}
	if ip.num.R[e] {
		ip.counts[pathKey{s.start, s.acc + ip.num.Val[e]}]++
		s.start = ip.num.G.Edge(e).To
		s.acc = 0
		return
	}
	s.acc += ip.num.Val[e]
}

// Exit ends the innermost activation.
func (ip *Instrumented) Exit() { ip.stack = ip.stack[:len(ip.stack)-1] }

// Profile regenerates the paths behind the compact counters.
func (ip *Instrumented) Profile() (*Profile, error) {
	prof := NewProfile(ip.name, ip.num.R)
	for k, n := range ip.counts {
		p, err := ip.num.Regenerate(k.start, k.id)
		if err != nil {
			return nil, fmt.Errorf("bl: %s: %w", ip.name, err)
		}
		prof.Add(p, n)
	}
	return prof, nil
}

// ProfileProgram runs prog under the interpreter with a Tracker attached
// to every function and returns the program profile alongside the run
// result. The recording-edge set of each function is the minimal one.
func ProfileProgram(prog *cfg.Program, opt interp.Options) (*ProgramProfile, *interp.Result, error) {
	trackers := map[string]*Tracker{}
	for name, fn := range prog.Funcs {
		trackers[name] = NewTracker(fn, RecordingEdges(fn.G))
	}
	userEnter, userEdge, userExit := opt.OnEnter, opt.OnEdge, opt.OnExit
	opt.OnEnter = func(fn *cfg.Func) {
		trackers[fn.Name].Enter()
		if userEnter != nil {
			userEnter(fn)
		}
	}
	opt.OnEdge = func(fn *cfg.Func, e cfg.EdgeID) {
		trackers[fn.Name].Edge(e)
		if userEdge != nil {
			userEdge(fn, e)
		}
	}
	opt.OnExit = func(fn *cfg.Func) {
		trackers[fn.Name].Exit()
		if userExit != nil {
			userExit(fn)
		}
	}
	res, err := interp.Run(prog, opt)
	if err != nil {
		return nil, res, err
	}
	pp := NewProgramProfile()
	for name, t := range trackers {
		pp.Funcs[name] = t.Profile()
	}
	return pp, res, nil
}
