package bl

import (
	"fmt"
	"sort"
	"strings"

	"pathflow/internal/cfg"
)

// Profile is a Ball-Larus path profile for one function: a multiset of
// Ball-Larus paths (paper Definition 8).
type Profile struct {
	FuncName string
	R        map[cfg.EdgeID]bool
	Entries  map[string]*Entry
}

// Entry is one path with its execution count.
type Entry struct {
	Path  Path
	Count int64
}

// NewProfile returns an empty profile for a function whose recording-edge
// set is R.
func NewProfile(name string, R map[cfg.EdgeID]bool) *Profile {
	return &Profile{FuncName: name, R: R, Entries: map[string]*Entry{}}
}

// Add records n more executions of path p.
func (pr *Profile) Add(p Path, n int64) {
	k := p.Key()
	if e, ok := pr.Entries[k]; ok {
		e.Count += n
		return
	}
	pr.Entries[k] = &Entry{Path: p, Count: n}
}

// NumPaths returns the number of distinct executed paths (the "Paths"
// column of the paper's Table 1).
func (pr *Profile) NumPaths() int { return len(pr.Entries) }

// TotalCount returns the total number of path traversals.
func (pr *Profile) TotalCount() int64 {
	var n int64
	for _, e := range pr.Entries {
		n += e.Count
	}
	return n
}

// DynInstrs returns the number of dynamic instructions the profile covers:
// Σ Count × NumInstrs(path). This matches the interpreter's dynamic
// instruction count for the run that produced the profile.
func (pr *Profile) DynInstrs(g *cfg.Graph) int64 {
	var n int64
	for _, e := range pr.Entries {
		n += e.Count * int64(e.Path.NumInstrs(g))
	}
	return n
}

// SortedEntries returns the entries ordered by descending dynamic
// instructions (count × length), breaking ties by path key — the order in
// which the paper's hot-path selection considers paths.
func (pr *Profile) SortedEntries(g *cfg.Graph) []*Entry {
	es := make([]*Entry, 0, len(pr.Entries))
	for _, e := range pr.Entries {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		wi := es[i].Count * int64(es[i].Path.NumInstrs(g))
		wj := es[j].Count * int64(es[j].Path.NumInstrs(g))
		if wi != wj {
			return wi > wj
		}
		return es[i].Path.Key() < es[j].Path.Key()
	})
	return es
}

// Validate checks every entry against Definition 7.
func (pr *Profile) Validate(g *cfg.Graph) error {
	for _, e := range pr.Entries {
		if err := e.Path.Validate(g, pr.R); err != nil {
			return fmt.Errorf("profile of %s: %w", pr.FuncName, err)
		}
		if e.Count < 0 {
			return fmt.Errorf("profile of %s: negative count for %s", pr.FuncName, e.Path.Key())
		}
	}
	return nil
}

// Equal reports whether two profiles record the same multiset of paths.
func (pr *Profile) Equal(other *Profile) bool {
	if len(pr.Entries) != len(other.Entries) {
		return false
	}
	for k, e := range pr.Entries {
		o, ok := other.Entries[k]
		if !ok || o.Count != e.Count {
			return false
		}
	}
	return true
}

// String renders the profile sorted by count then key, one path per line.
func (pr *Profile) String(g *cfg.Graph) string {
	es := make([]*Entry, 0, len(pr.Entries))
	for _, e := range pr.Entries {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Count != es[j].Count {
			return es[i].Count > es[j].Count
		}
		return es[i].Path.Key() < es[j].Path.Key()
	})
	var b strings.Builder
	for _, e := range es {
		fmt.Fprintf(&b, "%8d %s\n", e.Count, e.Path.String(g))
	}
	return b.String()
}

// ProgramProfile maps each function name to its path profile.
type ProgramProfile struct {
	Funcs map[string]*Profile
}

// NewProgramProfile returns an empty program profile.
func NewProgramProfile() *ProgramProfile {
	return &ProgramProfile{Funcs: map[string]*Profile{}}
}

// TotalPaths sums the distinct executed path counts over all functions.
func (pp *ProgramProfile) TotalPaths() int {
	n := 0
	for _, p := range pp.Funcs {
		n += p.NumPaths()
	}
	return n
}
