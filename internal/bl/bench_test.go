package bl_test

import (
	"testing"

	. "pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/interp"
	"pathflow/internal/lang"
	"pathflow/internal/paperex"
)

// benchProgram is a moderately branchy loop used by the micro-benchmarks.
const benchSrc = `
func main() {
	n = arg(0);
	i = 0;
	s = 0;
	while (i < n) {
		t = input() % 100;
		if (t < 50) { s = s + 1; } else { s = s + 2; }
		if (t % 3 == 0) { s = s ^ 7; }
		if (t % 7 == 0) { s = s * 3 % 1009; }
		i = i + 1;
	}
	print(s);
}`

func BenchmarkNumberingConstruction(b *testing.B) {
	f, _, _ := paperex.Build()
	R := RecordingEdges(f.G)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewNumbering(f.G, R); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegenerate(b *testing.B) {
	f, _, _ := paperex.Build()
	num, err := NewNumbering(f.G, RecordingEdges(f.G))
	if err != nil {
		b.Fatal(err)
	}
	starts := []cfg.NodeID{}
	for e := range num.R {
		starts = append(starts, f.G.Edge(e).To)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := starts[i%len(starts)]
		if num.TotalPaths(s) == 0 {
			continue
		}
		if _, err := num.Regenerate(s, int64(i)%num.TotalPaths(s)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrackerProfiling(b *testing.B) {
	prog, err := lang.Compile(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	opts := interp.Options{Args: []int64{500}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ProfileProgram(prog, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstrumentedProfiling(b *testing.B) {
	prog, err := lang.Compile(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ips := map[string]*Instrumented{}
		for name, fn := range prog.Funcs {
			ip, err := NewInstrumented(fn, RecordingEdges(fn.G))
			if err != nil {
				b.Fatal(err)
			}
			ips[name] = ip
		}
		_, err := interp.Run(prog, interp.Options{
			Args:    []int64{500},
			OnEnter: func(fn *cfg.Func) { ips[fn.Name].Enter() },
			OnEdge:  func(fn *cfg.Func, e cfg.EdgeID) { ips[fn.Name].Edge(e) },
			OnExit:  func(fn *cfg.Func) { ips[fn.Name].Exit() },
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
