// Package opt consumes a constant-propagation solution and rewrites the
// analyzed graph: every pure instruction whose result is a known constant
// becomes a Const load. This is the optimization the paper's PW pass
// performs before handing the program to the backend; downstream effects
// (cheaper ALU ops, shorter dependence chains) are modeled by
// internal/machine's cost table.
package opt

import (
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/ir"
)

// Fold rewrites the constant-result instructions of g in place and
// returns how many instructions were folded. Only reached nodes are
// rewritten; instructions that are already Const loads are left alone.
//
// Fold mutates g: pass a cfg.Graph.Clone if the analyzed graph must stay
// intact.
func Fold(g *cfg.Graph, sol *constprop.Result) int {
	folded := 0
	for _, nd := range g.Nodes {
		if !sol.Reached(nd.ID) || len(nd.Instrs) == 0 {
			continue
		}
		vals := sol.InstrValues(nd.ID)
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			if in.Op == ir.Const || !in.Op.IsPure() || !in.HasDst() {
				continue
			}
			if !vals[i].IsConst() {
				continue
			}
			*in = ir.Instr{Op: ir.Const, Dst: in.Dst, A: ir.NoVar, B: ir.NoVar, K: vals[i].K}
			folded++
		}
	}
	return folded
}

// OptimizeFunc clones fn, runs Wegman-Zadek constant propagation on the
// clone and folds the constants it finds. It is the per-function baseline
// optimization (the paper's CA = 0 configuration).
func OptimizeFunc(fn *cfg.Func) (*cfg.Func, int) {
	out := fn.CloneFunc()
	sol := constprop.Analyze(out.G, out.NumVars(), true)
	n := Fold(out.G, sol)
	return out, n
}

// OptimizeGraph clones g, analyzes and folds it, returning the optimized
// graph. Used for qualified graphs (HPG/rHPG), whose own analysis result
// the caller wants to keep.
func OptimizeGraph(g *cfg.Graph, numVars int) (*cfg.Graph, int) {
	out := g.Clone()
	sol := constprop.Analyze(out, numVars, true)
	n := Fold(out, sol)
	return out, n
}
