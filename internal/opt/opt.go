// Package opt consumes data-flow solutions and rewrites the analyzed
// graph. Three passes compose the paper's PW-style pre-backend cleanup:
//
//   - Fold: every pure instruction whose constant-propagation result is
//     a known constant becomes a Const load.
//   - FoldIntervals: range analysis catches singleton intervals [k,k]
//     that the constant lattice missed (e.g. values pinned by branch
//     refinement rather than by constant operands).
//   - DeleteDead: guided liveness deletes pure instructions whose
//     destination is provably dead, iterated to a fixpoint (deleting a
//     store can kill the stores feeding it).
//
// Downstream effects (cheaper ALU ops, shorter dependence chains,
// smaller code footprint) are modeled by internal/machine's cost table.
package opt

import (
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/intervals"
	"pathflow/internal/ir"
	"pathflow/internal/liveness"
)

// Passes selects which optimizer passes run; combine with |.
type Passes uint8

const (
	// PassConst folds constant-propagation results (the paper's PW pass).
	PassConst Passes = 1 << iota
	// PassInterval folds singleton result intervals.
	PassInterval
	// PassDead deletes provably dead pure instructions.
	PassDead
)

// PassesAll enables every pass.
const PassesAll = PassConst | PassInterval | PassDead

// Has reports whether every pass in p is enabled.
func (ps Passes) Has(p Passes) bool { return ps&p == p }

// Counts breaks the optimizer's rewrites down by pass.
type Counts struct {
	// Const counts instructions folded from the constant-propagation
	// solution.
	Const int
	// Interval counts additional folds from singleton result intervals
	// the constant lattice missed.
	Interval int
	// Dead counts provably dead pure instructions deleted by guided
	// liveness.
	Dead int
}

// Total returns the total number of rewritten instructions.
func (c Counts) Total() int { return c.Const + c.Interval + c.Dead }

// Add returns the per-pass sums of c and o.
func (c Counts) Add(o Counts) Counts {
	return Counts{Const: c.Const + o.Const, Interval: c.Interval + o.Interval, Dead: c.Dead + o.Dead}
}

// Fold rewrites the constant-result instructions of g in place and
// returns how many instructions were folded. Only reached nodes are
// rewritten; instructions that are already Const loads are left alone.
//
// Fold mutates g: pass a cfg.Graph.Clone if the analyzed graph must stay
// intact.
func Fold(g *cfg.Graph, sol *constprop.Result) int {
	folded := 0
	for _, nd := range g.Nodes {
		if !sol.Reached(nd.ID) || len(nd.Instrs) == 0 {
			continue
		}
		vals := sol.InstrValues(nd.ID)
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			if in.Op == ir.Const || !in.Op.IsPure() || !in.HasDst() {
				continue
			}
			if !vals[i].IsConst() {
				continue
			}
			*in = ir.Instr{Op: ir.Const, Dst: in.Dst, A: ir.NoVar, B: ir.NoVar, K: vals[i].K}
			folded++
		}
	}
	return folded
}

// FoldIntervals rewrites pure instructions whose result interval is a
// singleton [k, k] into Const loads, returning how many it folded. Run
// after Fold: instructions constant propagation already rewrote are
// Const loads and are skipped, so the count isolates what range analysis
// alone contributed.
func FoldIntervals(g *cfg.Graph, iv *intervals.Result) int {
	folded := 0
	for _, nd := range g.Nodes {
		if !iv.Reached(nd.ID) || len(nd.Instrs) == 0 {
			continue
		}
		vals := iv.InstrIntervals(nd.ID)
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			if in.Op == ir.Const || !in.Op.IsPure() || !in.HasDst() {
				continue
			}
			k, ok := vals[i].IsConst()
			if !ok {
				continue
			}
			*in = ir.Instr{Op: ir.Const, Dst: in.Dst, A: ir.NoVar, B: ir.NoVar, K: k}
			folded++
		}
	}
	return folded
}

// DeleteDead removes pure instructions whose destination is dead,
// according to live-variable analysis guided by guide (pass nil for
// plain liveness). Every operation in the IR is total — division by
// zero yields zero — so deleting an unobserved pure instruction cannot
// change behavior. The pass iterates to a fixpoint: deleting `d = a*a`
// may leave `a`'s defining store dead in turn. Returns the number of
// deleted instructions.
//
// DeleteDead mutates g; unreached nodes (nil liveness facts) are left
// untouched.
func DeleteDead(g *cfg.Graph, numVars int, guide *dataflow.Solution) int {
	deleted := 0
	for {
		lv := liveness.Analyze(g, numVars, guide)
		n := 0
		for _, nd := range g.Nodes {
			if len(nd.Instrs) == 0 {
				continue
			}
			dead := lv.DeadStores(nd.ID)
			keep := nd.Instrs[:0]
			for i := range nd.Instrs {
				if dead != nil && dead[i] {
					n++
					continue
				}
				keep = append(keep, nd.Instrs[i])
			}
			nd.Instrs = keep
		}
		if n == 0 {
			return deleted
		}
		deleted += n
	}
}

// OptimizeFunc clones fn and runs the selected passes: Wegman-Zadek
// constant folding, interval-singleton folding, and guided dead-store
// deletion. It is the per-function baseline optimization (with
// PassConst, the paper's CA = 0 configuration).
func OptimizeFunc(fn *cfg.Func, ps Passes) (*cfg.Func, Counts) {
	out := fn.CloneFunc()
	c := optimize(out.G, out.NumVars(), ps)
	return out, c
}

// OptimizeGraph clones g, analyzes and rewrites it with the selected
// passes, returning the optimized graph. Used for qualified graphs
// (HPG/rHPG), whose own analysis result the caller wants to keep.
func OptimizeGraph(g *cfg.Graph, numVars int, ps Passes) (*cfg.Graph, Counts) {
	out := g.Clone()
	c := optimize(out, numVars, ps)
	return out, c
}

func optimize(g *cfg.Graph, numVars int, ps Passes) Counts {
	var c Counts
	sol := constprop.Analyze(g, numVars, true)
	if ps.Has(PassConst) {
		c.Const = Fold(g, sol)
	}
	if ps.Has(PassInterval) {
		iv := intervals.Analyze(g, numVars, true)
		c.Interval = FoldIntervals(g, iv)
	}
	if ps.Has(PassDead) {
		c.Dead = DeleteDead(g, numVars, sol.Sol)
	}
	return c
}
