package opt_test

import (
	"reflect"
	"testing"

	"pathflow/internal/automaton"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/interp"
	"pathflow/internal/intervals"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	. "pathflow/internal/opt"
	"pathflow/internal/paperex"
	"pathflow/internal/trace"
)

func TestFoldStraightLine(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	x = 3;
	y = x * 2 + 1;
	z = y - 7;
	print(z);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	sol := constprop.Analyze(f.G, f.NumVars(), true)
	n := Fold(f.G, sol)
	if n == 0 {
		t.Fatal("nothing folded")
	}
	// After folding, every pure instruction with a destination is a
	// Const load.
	for _, nd := range f.G.Nodes {
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			if in.Op.IsPure() && in.HasDst() && in.Op != ir.Const {
				t.Errorf("unfolded instruction %s in %s", in.String(), nd.Name)
			}
		}
	}
	// The program still prints 0: z = (3*2+1) - 7.
	res, err := interp.Run(prog, interp.Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []ir.Value{0}) {
		t.Errorf("output = %v, want [0]", res.Output)
	}
}

func TestFoldLeavesImpureAlone(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	a = input();
	b = 2 + 3;
	print(a + b);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	sol := constprop.Analyze(f.G, f.NumVars(), true)
	Fold(f.G, sol)
	inputs := 0
	for _, nd := range f.G.Nodes {
		for i := range nd.Instrs {
			if nd.Instrs[i].Op == ir.Input {
				inputs++
			}
		}
	}
	if inputs != 1 {
		t.Errorf("input instructions = %d, want 1 (must not fold)", inputs)
	}
}

func TestOptimizeFuncDoesNotMutateOriginal(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	x = 3;
	y = x * 2;
	print(y);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	before := f.G.String()
	optF, n := OptimizeFunc(f, PassesAll)
	if n.Total() == 0 {
		t.Fatal("nothing folded")
	}
	if f.G.String() != before {
		t.Error("OptimizeFunc mutated the original graph")
	}
	if optF.G.String() == before {
		t.Error("OptimizeFunc returned an unmodified clone")
	}
}

func TestFoldOnExampleHPGPreservesBehaviour(t *testing.T) {
	f, _, edges := paperex.Build()
	ps := paperex.Paths(edges)
	a, err := automaton.New(f.G, paperex.Recording(edges), ps[:])
	if err != nil {
		t.Fatal(err)
	}
	h, err := trace.Build(f, a)
	if err != nil {
		t.Fatal(err)
	}
	folded, n := OptimizeGraph(h.G, f.NumVars(), PassesAll)
	// x=a+b at H12..H15, i++ at H14/H15 and n=i at I17 all fold, plus
	// folded copies.
	if n.Const < 7 {
		t.Errorf("folded %d instructions, want >= 7", n.Const)
	}
	for kind := 1; kind <= 3; kind++ {
		in := paperex.RunInputs(kind)
		p1 := cfg.NewProgram()
		p1.Add(f)
		r1, err := interp.Run(p1, interp.Options{Input: &interp.SliceInput{Values: in}})
		if err != nil {
			t.Fatal(err)
		}
		p2 := cfg.NewProgram()
		p2.Add(&cfg.Func{Name: f.Name, Params: f.Params, VarNames: f.VarNames, G: folded})
		r2, err := interp.Run(p2, interp.Options{Input: &interp.SliceInput{Values: in}})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Ret != r2.Ret {
			t.Errorf("kind %d: folded HPG returns %d, original %d", kind, r2.Ret, r1.Ret)
		}
	}
}

func TestFoldSkipsUnreachedNodes(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	c = 0;
	if (c != 0) { x = 1 + 2; print(x); }
	print(c);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	sol := constprop.Analyze(f.G, f.NumVars(), true)
	Fold(f.G, sol)
	// The dead then-branch keeps its add: the analysis never reached it,
	// so folding it would be based on the meaningless all-⊤ environment.
	adds := 0
	for _, nd := range f.G.Nodes {
		for i := range nd.Instrs {
			if nd.Instrs[i].Op == ir.Add {
				adds++
			}
		}
	}
	if adds == 0 {
		t.Error("dead code was folded")
	}
}

// --- FoldIntervals -------------------------------------------------------

// TestFoldIntervalsCatchesRefinementSingletons: after `while (i < 10)`
// the loop counter is exactly 10 (refinement pins [10,10], but the
// constant lattice sees ⊥ after the loop-carried merge). FoldIntervals
// must fold a use of i after the loop; Fold alone must not.
func TestFoldIntervalsCatchesRefinementSingletons(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	i = 0;
	while (i < 10) {
		i = i + 1;
	}
	y = i + 5;
	print(y);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	nv := f.NumVars()

	g := f.G.Clone()
	sol := constprop.Analyze(g, nv, true)
	constFolds := Fold(g, sol)
	iv := intervals.Analyze(g, nv, true)
	ivFolds := FoldIntervals(g, iv)
	if ivFolds == 0 {
		t.Fatalf("interval folding found nothing beyond constprop (const folds = %d)", constFolds)
	}

	// Behaviour must be unchanged.
	run := func(gr *cfg.Graph) []ir.Value {
		p := cfg.NewProgram()
		p.Add(&cfg.Func{Name: f.Name, Params: f.Params, VarNames: f.VarNames, G: gr})
		r, err := interp.Run(p, interp.Options{CollectOutput: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.Output
	}
	if got, want := run(g), run(f.G); !reflect.DeepEqual(got, want) {
		t.Fatalf("interval-folded output = %v, want %v", got, want)
	}
}

// --- DeleteDead ----------------------------------------------------------

// TestDeleteDeadCascades: deleting d = c*c leaves c's store dead in
// turn; the fixpoint loop must delete the whole dead chain but keep the
// live computation intact.
func TestDeleteDeadCascades(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	a = input();
	b = a + 1;
	c = a * 2;
	d = c * c;
	print(b);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	g := f.G.Clone()
	n := DeleteDead(g, f.NumVars(), nil)
	if n < 2 {
		t.Fatalf("deleted %d instructions, want the c/d chain (>= 2)", n)
	}
	for _, nd := range g.Nodes {
		for i := range nd.Instrs {
			if nd.Instrs[i].Op == ir.Mul {
				t.Fatalf("dead multiply survived in %s", nd.Name)
			}
		}
	}
	run := func(gr *cfg.Graph) []ir.Value {
		p := cfg.NewProgram()
		p.Add(&cfg.Func{Name: f.Name, Params: f.Params, VarNames: f.VarNames, G: gr})
		r, err := interp.Run(p, interp.Options{
			Input:         &interp.SliceInput{Values: []ir.Value{41}},
			CollectOutput: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.Output
	}
	if got, want := run(g), run(f.G); !reflect.DeepEqual(got, want) {
		t.Fatalf("dead-deleted output = %v, want %v", got, want)
	}
}

// TestDeleteDeadGuidedRemovesUnreachableUses: a store whose only use
// sits behind a branch constant propagation decides is dead under the
// guided analysis, but live under the plain one.
func TestDeleteDeadGuidedRemovesUnreachableUses(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	u = input();
	v = u * 3;
	p = 1;
	if (p) { print(u); } else { print(v); }
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	nv := f.NumVars()

	plain := f.G.Clone()
	if n := DeleteDead(plain, nv, nil); n != 0 {
		t.Fatalf("plain liveness deleted %d instructions; v's use looks live without a guide", n)
	}

	guided := f.G.Clone()
	sol := constprop.Analyze(guided, nv, true)
	if n := DeleteDead(guided, nv, sol.Sol); n == 0 {
		t.Fatal("guided liveness failed to delete the store feeding the dead leg")
	}
}

// TestOptimizeGraphCountsSeparate: OptimizeFunc reports the three passes
// separately and the clone leaves the original untouched.
func TestOptimizeCountsSeparate(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	x = 3;
	y = x * 2;
	i = 0;
	while (i < 4) { i = i + 1; }
	w = input() * 0;
	dead = input() + 1;
	print(y + i + w);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	before := f.G.String()
	_, c := OptimizeFunc(f, PassesAll)
	if f.G.String() != before {
		t.Fatal("OptimizeFunc mutated the original")
	}
	if c.Const == 0 {
		t.Errorf("no const folds: %+v", c)
	}
	if c.Interval == 0 {
		t.Errorf("no interval folds (loop exit i = 4 expected): %+v", c)
	}
	if c.Dead == 0 {
		t.Errorf("no dead deletions (`dead` is unused): %+v", c)
	}
	if c.Total() != c.Const+c.Interval+c.Dead {
		t.Errorf("Total inconsistent: %+v", c)
	}
}
