package opt_test

import (
	"reflect"
	"testing"

	"pathflow/internal/automaton"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	. "pathflow/internal/opt"
	"pathflow/internal/paperex"
	"pathflow/internal/trace"
)

func TestFoldStraightLine(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	x = 3;
	y = x * 2 + 1;
	z = y - 7;
	print(z);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	sol := constprop.Analyze(f.G, f.NumVars(), true)
	n := Fold(f.G, sol)
	if n == 0 {
		t.Fatal("nothing folded")
	}
	// After folding, every pure instruction with a destination is a
	// Const load.
	for _, nd := range f.G.Nodes {
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			if in.Op.IsPure() && in.HasDst() && in.Op != ir.Const {
				t.Errorf("unfolded instruction %s in %s", in.String(), nd.Name)
			}
		}
	}
	// The program still prints 0: z = (3*2+1) - 7.
	res, err := interp.Run(prog, interp.Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []ir.Value{0}) {
		t.Errorf("output = %v, want [0]", res.Output)
	}
}

func TestFoldLeavesImpureAlone(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	a = input();
	b = 2 + 3;
	print(a + b);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	sol := constprop.Analyze(f.G, f.NumVars(), true)
	Fold(f.G, sol)
	inputs := 0
	for _, nd := range f.G.Nodes {
		for i := range nd.Instrs {
			if nd.Instrs[i].Op == ir.Input {
				inputs++
			}
		}
	}
	if inputs != 1 {
		t.Errorf("input instructions = %d, want 1 (must not fold)", inputs)
	}
}

func TestOptimizeFuncDoesNotMutateOriginal(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	x = 3;
	y = x * 2;
	print(y);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	before := f.G.String()
	optF, n := OptimizeFunc(f)
	if n == 0 {
		t.Fatal("nothing folded")
	}
	if f.G.String() != before {
		t.Error("OptimizeFunc mutated the original graph")
	}
	if optF.G.String() == before {
		t.Error("OptimizeFunc returned an unmodified clone")
	}
}

func TestFoldOnExampleHPGPreservesBehaviour(t *testing.T) {
	f, _, edges := paperex.Build()
	ps := paperex.Paths(edges)
	a, err := automaton.New(f.G, paperex.Recording(edges), ps[:])
	if err != nil {
		t.Fatal(err)
	}
	h, err := trace.Build(f, a)
	if err != nil {
		t.Fatal(err)
	}
	folded, n := OptimizeGraph(h.G, f.NumVars())
	// x=a+b at H12..H15, i++ at H14/H15 and n=i at I17 all fold, plus
	// folded copies.
	if n < 7 {
		t.Errorf("folded %d instructions, want >= 7", n)
	}
	for kind := 1; kind <= 3; kind++ {
		in := paperex.RunInputs(kind)
		p1 := cfg.NewProgram()
		p1.Add(f)
		r1, err := interp.Run(p1, interp.Options{Input: &interp.SliceInput{Values: in}})
		if err != nil {
			t.Fatal(err)
		}
		p2 := cfg.NewProgram()
		p2.Add(&cfg.Func{Name: f.Name, Params: f.Params, VarNames: f.VarNames, G: folded})
		r2, err := interp.Run(p2, interp.Options{Input: &interp.SliceInput{Values: in}})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Ret != r2.Ret {
			t.Errorf("kind %d: folded HPG returns %d, original %d", kind, r2.Ret, r1.Ret)
		}
	}
}

func TestFoldSkipsUnreachedNodes(t *testing.T) {
	prog, err := lang.Compile(`
func main() {
	c = 0;
	if (c != 0) { x = 1 + 2; print(x); }
	print(c);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Main()
	sol := constprop.Analyze(f.G, f.NumVars(), true)
	Fold(f.G, sol)
	// The dead then-branch keeps its add: the analysis never reached it,
	// so folding it would be based on the meaningless all-⊤ environment.
	adds := 0
	for _, nd := range f.G.Nodes {
		for i := range nd.Instrs {
			if nd.Instrs[i].Op == ir.Add {
				adds++
			}
		}
	}
	if adds == 0 {
		t.Error("dead code was folded")
	}
}
