package cfg

import (
	"strings"
	"testing"

	"pathflow/internal/ir"
)

// diamond builds entry -> a -> {b,c} -> d -> exit.
func diamond(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	g := New("diamond")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.Node(a).Kind = TermBranch
	g.Node(a).Cond = 0
	g.Node(d).Kind = TermReturn
	g.AddEdge(g.Entry, a)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	g.AddEdge(d, g.Exit)
	if err := g.Validate(1); err != nil {
		t.Fatal(err)
	}
	return g, map[string]NodeID{"a": a, "b": b, "c": c, "d": d}
}

// loopGraph builds entry -> h; h -> body -> h; h -> t -> exit.
func loopGraph(t *testing.T) (*Graph, NodeID, NodeID) {
	t.Helper()
	g := New("loop")
	h := g.AddNode("h")
	body := g.AddNode("body")
	tail := g.AddNode("t")
	g.Node(h).Kind = TermBranch
	g.Node(h).Cond = 0
	g.Node(tail).Kind = TermReturn
	g.AddEdge(g.Entry, h)
	g.AddEdge(h, body) // taken: loop
	g.AddEdge(h, tail)
	g.AddEdge(body, h)
	g.AddEdge(tail, g.Exit)
	if err := g.Validate(1); err != nil {
		t.Fatal(err)
	}
	return g, h, body
}

// irreducibleGraph builds the classic two-entry loop: entry branches to a
// and b, which branch to each other and to exit.
func irreducibleGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("irreducible")
	e0 := g.AddNode("e0")
	a := g.AddNode("a")
	b := g.AddNode("b")
	x := g.AddNode("x")
	g.Node(e0).Kind = TermBranch
	g.Node(e0).Cond = 0
	g.Node(a).Kind = TermBranch
	g.Node(a).Cond = 0
	g.Node(b).Kind = TermBranch
	g.Node(b).Cond = 0
	g.Node(x).Kind = TermReturn
	g.AddEdge(g.Entry, e0)
	g.AddEdge(e0, a)
	g.AddEdge(e0, b)
	g.AddEdge(a, b)
	g.AddEdge(a, x)
	g.AddEdge(b, a)
	g.AddEdge(b, x)
	g.AddEdge(x, g.Exit)
	if err := g.Validate(1); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDFSOnDiamond(t *testing.T) {
	g, n := diamond(t)
	dfs := g.DepthFirst()
	if len(dfs.Retreating) != 0 {
		t.Errorf("retreating edges = %d, want 0", len(dfs.Retreating))
	}
	if dfs.NumReachable() != g.NumNodes() {
		t.Errorf("reachable = %d, want all %d", dfs.NumReachable(), g.NumNodes())
	}
	// RPO: every non-retreating edge goes from lower to higher RPO.
	for _, e := range g.Edges {
		if dfs.RPO[e.From] >= dfs.RPO[e.To] {
			t.Errorf("edge %d->%d violates RPO ordering", e.From, e.To)
		}
	}
	if dfs.RPO[g.Entry] != 0 {
		t.Errorf("entry RPO = %d, want 0", dfs.RPO[g.Entry])
	}
	_ = n
}

func TestDFSOnLoop(t *testing.T) {
	g, h, body := loopGraph(t)
	dfs := g.DepthFirst()
	if len(dfs.Retreating) != 1 {
		t.Fatalf("retreating = %d, want 1", len(dfs.Retreating))
	}
	for e := range dfs.Retreating {
		if g.Edge(e).From != body || g.Edge(e).To != h {
			t.Errorf("retreating edge is %d->%d, want body->h", g.Edge(e).From, g.Edge(e).To)
		}
	}
}

func TestUnreachableNodes(t *testing.T) {
	g := New("unreach")
	a := g.AddNode("a")
	dead := g.AddNode("dead")
	g.Node(a).Kind = TermReturn
	g.Node(dead).Kind = TermReturn
	g.AddEdge(g.Entry, a)
	g.AddEdge(a, g.Exit)
	g.AddEdge(dead, g.Exit)
	if err := g.Validate(0); err != nil {
		t.Fatal(err)
	}
	dfs := g.DepthFirst()
	if dfs.Reachable(dead) {
		t.Error("dead node reported reachable")
	}
	if dfs.NumReachable() != 3 {
		t.Errorf("reachable = %d, want 3", dfs.NumReachable())
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g, n := diamond(t)
	dom := g.ComputeDominators()
	if !dom.Dominates(n["a"], n["d"]) {
		t.Error("a must dominate d")
	}
	if dom.Dominates(n["b"], n["d"]) || dom.Dominates(n["c"], n["d"]) {
		t.Error("neither branch leg dominates the join")
	}
	if dom.Idom[n["d"]] != n["a"] {
		t.Errorf("idom(d) = %d, want a", dom.Idom[n["d"]])
	}
	if !dom.Dominates(g.Entry, n["d"]) {
		t.Error("entry dominates everything")
	}
	if dom.Dominates(n["d"], n["a"]) {
		t.Error("dominance is antisymmetric")
	}
}

func TestBackEdgesAndLoops(t *testing.T) {
	g, h, body := loopGraph(t)
	back := g.BackEdges()
	if len(back) != 1 {
		t.Fatalf("back edges = %d, want 1", len(back))
	}
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	if loops[0].Head != h {
		t.Errorf("loop head = %d, want %d", loops[0].Head, h)
	}
	if len(loops[0].Body) != 2 {
		t.Errorf("loop body = %v, want {h, body}", loops[0].Body)
	}
	_ = body
}

func TestReducibility(t *testing.T) {
	g, _, _ := loopGraph(t)
	if !g.Reducible() {
		t.Error("natural loop graph must be reducible")
	}
	ir := irreducibleGraph(t)
	if ir.Reducible() {
		t.Error("two-entry loop must be irreducible")
	}
	// The irreducible graph still has retreating edges but they are not
	// back edges.
	dfs := ir.DepthFirst()
	back := ir.BackEdges()
	found := false
	for e := range dfs.Retreating {
		if !back[e] {
			found = true
		}
	}
	if !found {
		t.Error("expected a retreating edge that is not a back edge")
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("branch arity", func(t *testing.T) {
		g := New("bad")
		a := g.AddNode("a")
		g.Node(a).Kind = TermBranch
		g.Node(a).Cond = 0
		g.AddEdge(g.Entry, a)
		g.AddEdge(a, g.Exit)
		if err := g.Validate(1); err == nil || !strings.Contains(err.Error(), "out-edges") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("return not to exit", func(t *testing.T) {
		g := New("bad")
		a := g.AddNode("a")
		b := g.AddNode("b")
		g.Node(a).Kind = TermReturn
		g.Node(b).Kind = TermReturn
		g.AddEdge(g.Entry, a)
		g.AddEdge(a, b) // wrong: return must target exit
		g.AddEdge(b, g.Exit)
		if err := g.Validate(1); err == nil || !strings.Contains(err.Error(), "exit") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("branch bad cond", func(t *testing.T) {
		g := New("bad")
		a := g.AddNode("a")
		b := g.AddNode("b")
		g.Node(a).Kind = TermBranch
		g.Node(a).Cond = 5 // out of range for numVars=1
		g.Node(b).Kind = TermReturn
		g.AddEdge(g.Entry, a)
		g.AddEdge(a, b)
		g.AddEdge(a, b)
		g.AddEdge(b, g.Exit)
		if err := g.Validate(1); err == nil || !strings.Contains(err.Error(), "condition") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad instr", func(t *testing.T) {
		g := New("bad")
		a := g.AddNode("a")
		g.Node(a).Kind = TermReturn
		g.Node(a).Instrs = []ir.Instr{{Op: ir.Add, Dst: 0, A: 1, B: 99}}
		g.AddEdge(g.Entry, a)
		g.AddEdge(a, g.Exit)
		if err := g.Validate(2); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestCloneIsDeep(t *testing.T) {
	g, n := diamond(t)
	g.Node(n["b"]).Instrs = []ir.Instr{{Op: ir.Const, Dst: 0, A: ir.NoVar, B: ir.NoVar, K: 1}}
	c := g.Clone()
	if err := c.Validate(1); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	c.Node(n["b"]).Instrs[0].K = 99
	c.Node(n["b"]).Out = nil
	if g.Node(n["b"]).Instrs[0].K != 1 {
		t.Error("clone shares instruction storage")
	}
	if len(g.Node(n["b"]).Out) == 0 {
		t.Error("clone shares edge lists")
	}
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Error("clone size mismatch")
	}
}

func TestProgramHelpers(t *testing.T) {
	p := NewProgram()
	if p.Main() != nil {
		t.Error("empty program has a main")
	}
	g1 := New("f")
	a := g1.AddNode("a")
	g1.Node(a).Kind = TermReturn
	g1.AddEdge(g1.Entry, a)
	g1.AddEdge(a, g1.Exit)
	f := &Func{Name: "f", G: g1, VarNames: []string{"x"}}
	p.Add(f)
	if p.Main() != f {
		t.Error("first function should be main fallback")
	}
	g2 := New("main")
	b := g2.AddNode("b")
	g2.Node(b).Kind = TermReturn
	g2.AddEdge(g2.Entry, b)
	g2.AddEdge(b, g2.Exit)
	m := &Func{Name: "main", G: g2}
	p.Add(m)
	if p.Main() != m {
		t.Error("main function not preferred")
	}
	if p.NumNodes() != 6 {
		t.Errorf("NumNodes = %d, want 6", p.NumNodes())
	}
	if f.VarName(0) != "x" || f.VarName(ir.NoVar) != "v-1" {
		t.Errorf("VarName broken: %q %q", f.VarName(0), f.VarName(ir.NoVar))
	}
	// Re-adding a function does not duplicate the order entry.
	p.Add(m)
	if len(p.Order) != 2 {
		t.Errorf("Order = %v", p.Order)
	}
}

func TestSuccAndOutEdge(t *testing.T) {
	g, n := diamond(t)
	if g.Succ(n["a"], 0) != n["b"] || g.Succ(n["a"], 1) != n["c"] {
		t.Error("Succ slots wrong")
	}
	if g.Succ(n["a"], 2) != NoNode {
		t.Error("out-of-range Succ should be NoNode")
	}
	if g.OutEdge(n["a"], 2) != NoEdge {
		t.Error("out-of-range OutEdge should be NoEdge")
	}
}

func TestDotOutput(t *testing.T) {
	g, n := diamond(t)
	g.Node(n["b"]).Instrs = []ir.Instr{{Op: ir.Const, Dst: 0, A: ir.NoVar, B: ir.NoVar, K: 3}}
	dot := g.Dot(DotOptions{
		Instrs:    true,
		VarNames:  []string{"x"},
		Recording: map[EdgeID]bool{0: true},
	})
	for _, want := range []string{"digraph", "style=dashed", "x = const 3", "label=\"T\"", "label=\"F\""} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q", want)
		}
	}
}

func TestGraphString(t *testing.T) {
	g, _ := diamond(t)
	s := g.String()
	for _, want := range []string{"graph diamond", "branch -> b c", "halt"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q in:\n%s", want, s)
		}
	}
}

func TestSortedEdgeIDs(t *testing.T) {
	ids := SortedEdgeIDs(map[EdgeID]bool{5: true, 1: true, 3: true})
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 5 {
		t.Errorf("SortedEdgeIDs = %v", ids)
	}
}

func TestNumInstrs(t *testing.T) {
	g, n := diamond(t)
	g.Node(n["b"]).Instrs = []ir.Instr{{Op: ir.Nop}, {Op: ir.Nop}}
	g.Node(n["c"]).Instrs = []ir.Instr{{Op: ir.Nop}}
	if got := g.NumInstrs(); got != 3 {
		t.Errorf("NumInstrs = %d, want 3", got)
	}
}
