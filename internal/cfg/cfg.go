// Package cfg provides the control-flow graph on which every pathflow
// analysis runs.
//
// Edges are first-class values with stable identities because the rest of
// the system — Ball-Larus recording edges, the qualification automaton
// (whose alphabet is the edge set), and Holley-Rosen tracing — all label
// things by *edges*, not by (from,to) pairs.
//
// A Graph always has a distinguished empty Entry node and a distinguished
// empty Exit node. Every path the profiler records runs from the target of
// a recording edge to the target of a recording edge (paper §2.3), and the
// minimal recording-edge set is "edges from the entry vertex, edges into
// the exit vertex, and retreating edges".
package cfg

import (
	"fmt"

	"pathflow/internal/ir"
)

// NodeID identifies a node within one Graph.
type NodeID int32

// EdgeID identifies an edge within one Graph.
type EdgeID int32

// NoNode and NoEdge are invalid sentinels.
const (
	NoNode NodeID = -1
	NoEdge EdgeID = -1
)

// TermKind says how control leaves a node.
type TermKind uint8

const (
	// TermJump transfers to the single successor.
	TermJump TermKind = iota
	// TermBranch tests Cond: successor edge 0 is taken when Cond != 0,
	// successor edge 1 when Cond == 0.
	TermBranch
	// TermReturn leaves the function (its single successor edge leads to
	// Exit). Ret holds the returned register or ir.NoVar.
	TermReturn
	// TermHalt marks the Exit node itself; it has no successors.
	TermHalt
)

func (k TermKind) String() string {
	switch k {
	case TermJump:
		return "jump"
	case TermBranch:
		return "branch"
	case TermReturn:
		return "return"
	case TermHalt:
		return "halt"
	}
	return fmt.Sprintf("term(%d)", uint8(k))
}

// Node is a basic block: straight-line instructions plus a terminator.
type Node struct {
	ID     NodeID
	Name   string // optional label for diagnostics ("A", "B", ...)
	Instrs []ir.Instr
	Kind   TermKind
	Cond   ir.Var // TermBranch only
	Ret    ir.Var // TermReturn only; ir.NoVar if void
	Out    []EdgeID
	In     []EdgeID
}

// Edge is a directed control-flow edge.
type Edge struct {
	ID   EdgeID
	From NodeID
	To   NodeID
	// Slot is the index of this edge in From's Out list: 0 for a jump or
	// the true leg, 1 for the false leg of a branch.
	Slot int
}

// Graph is a single function's control-flow graph.
type Graph struct {
	Name  string
	Nodes []*Node
	Edges []*Edge
	Entry NodeID
	Exit  NodeID
}

// New returns a graph containing only Entry and Exit nodes. The entry node
// is a TermJump with no successor yet; callers connect it with AddEdge.
func New(name string) *Graph {
	g := &Graph{Name: name}
	g.Entry = g.AddNode("entry")
	g.Exit = g.AddNode("exit")
	g.Node(g.Exit).Kind = TermHalt
	return g
}

// AddNode appends a new node with the given diagnostic name and returns
// its ID. The node starts as a TermJump with no instructions.
func (g *Graph) AddNode(name string) NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, &Node{ID: id, Name: name, Cond: ir.NoVar, Ret: ir.NoVar})
	return id
}

// AddEdge appends a control-flow edge from -> to and returns its ID. Edges
// must be added in successor-slot order (true leg before false leg).
func (g *Graph) AddEdge(from, to NodeID) EdgeID {
	id := EdgeID(len(g.Edges))
	f, t := g.Node(from), g.Node(to)
	e := &Edge{ID: id, From: from, To: to, Slot: len(f.Out)}
	g.Edges = append(g.Edges, e)
	f.Out = append(f.Out, id)
	t.In = append(t.In, id)
	return id
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node { return g.Nodes[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) *Edge { return g.Edges[id] }

// NumNodes returns the node count (including Entry and Exit).
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// NumInstrs returns the total static instruction count of the graph.
func (g *Graph) NumInstrs() int {
	n := 0
	for _, nd := range g.Nodes {
		n += len(nd.Instrs)
	}
	return n
}

// Succ returns the node reached by out-edge slot of n, or NoNode.
func (g *Graph) Succ(n NodeID, slot int) NodeID {
	nd := g.Node(n)
	if slot >= len(nd.Out) {
		return NoNode
	}
	return g.Edge(nd.Out[slot]).To
}

// OutEdge returns the edge in the given successor slot of n, or NoEdge.
func (g *Graph) OutEdge(n NodeID, slot int) EdgeID {
	nd := g.Node(n)
	if slot >= len(nd.Out) {
		return NoEdge
	}
	return nd.Out[slot]
}

// Func couples a graph with its register table.
type Func struct {
	Name     string
	Params   []ir.Var // parameter registers, in declaration order
	VarNames []string // len(VarNames) == NumVars; "" for temporaries
	G        *Graph
}

// NumVars returns the number of virtual registers of the function.
func (f *Func) NumVars() int { return len(f.VarNames) }

// VarName returns the diagnostic name of register v.
func (f *Func) VarName(v ir.Var) string {
	if v.Valid() && int(v) < len(f.VarNames) && f.VarNames[v] != "" {
		return f.VarNames[v]
	}
	return fmt.Sprintf("v%d", v)
}

// Program is a set of functions; Order preserves declaration order and
// names the entry function first if present.
type Program struct {
	Funcs map[string]*Func
	Order []string
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{Funcs: map[string]*Func{}} }

// Add registers a function, preserving insertion order.
func (p *Program) Add(f *Func) {
	if _, dup := p.Funcs[f.Name]; !dup {
		p.Order = append(p.Order, f.Name)
	}
	p.Funcs[f.Name] = f
}

// Main returns the entry function ("main" if present, else the first
// declared), or nil for an empty program.
func (p *Program) Main() *Func {
	if f, ok := p.Funcs["main"]; ok {
		return f
	}
	if len(p.Order) > 0 {
		return p.Funcs[p.Order[0]]
	}
	return nil
}

// NumInstrs returns the total static instruction count of the program.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.G.NumInstrs()
	}
	return n
}

// NumNodes returns the total CFG node count of the program (the "Nodes"
// column of the paper's Table 1).
func (p *Program) NumNodes() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.G.NumNodes()
	}
	return n
}

// Clone deep-copies the graph: nodes, instruction slices and edges. The
// optimizer folds instructions in place, so callers that need to keep the
// analyzed graph intact hand it a clone.
func (g *Graph) Clone() *Graph {
	out := &Graph{Name: g.Name, Entry: g.Entry, Exit: g.Exit}
	out.Nodes = make([]*Node, len(g.Nodes))
	for i, n := range g.Nodes {
		c := *n
		c.Instrs = append([]ir.Instr(nil), n.Instrs...)
		c.Out = append([]EdgeID(nil), n.Out...)
		c.In = append([]EdgeID(nil), n.In...)
		out.Nodes[i] = &c
	}
	out.Edges = make([]*Edge, len(g.Edges))
	for i, e := range g.Edges {
		c := *e
		out.Edges[i] = &c
	}
	return out
}

// CloneFunc deep-copies a function (sharing the immutable name tables).
func (f *Func) CloneFunc() *Func {
	return &Func{Name: f.Name, Params: f.Params, VarNames: f.VarNames, G: f.G.Clone()}
}

// Validate checks the structural invariants the rest of the system relies
// on: terminator arity, edge symmetry, slot consistency, register ranges,
// and that Exit is the only halting node.
func (g *Graph) Validate(numVars int) error {
	if g.Entry < 0 || int(g.Entry) >= len(g.Nodes) || g.Exit < 0 || int(g.Exit) >= len(g.Nodes) {
		return fmt.Errorf("cfg %s: entry/exit out of range", g.Name)
	}
	for _, n := range g.Nodes {
		switch n.Kind {
		case TermJump, TermReturn:
			if len(n.Out) != 1 {
				return fmt.Errorf("cfg %s: node %s(%d) is %v with %d out-edges", g.Name, n.Name, n.ID, n.Kind, len(n.Out))
			}
			if n.Kind == TermReturn && g.Edge(n.Out[0]).To != g.Exit {
				return fmt.Errorf("cfg %s: return node %s(%d) does not lead to exit", g.Name, n.Name, n.ID)
			}
		case TermBranch:
			if len(n.Out) != 2 {
				return fmt.Errorf("cfg %s: branch node %s(%d) has %d out-edges", g.Name, n.Name, n.ID, len(n.Out))
			}
			if !n.Cond.Valid() || int(n.Cond) >= numVars {
				return fmt.Errorf("cfg %s: branch node %s(%d) has invalid condition register", g.Name, n.Name, n.ID)
			}
		case TermHalt:
			if n.ID != g.Exit {
				return fmt.Errorf("cfg %s: non-exit node %s(%d) halts", g.Name, n.Name, n.ID)
			}
			if len(n.Out) != 0 {
				return fmt.Errorf("cfg %s: exit node has out-edges", g.Name)
			}
		default:
			return fmt.Errorf("cfg %s: node %s(%d) has unknown terminator %d", g.Name, n.Name, n.ID, uint8(n.Kind))
		}
		for slot, eid := range n.Out {
			e := g.Edge(eid)
			if e.From != n.ID || e.Slot != slot {
				return fmt.Errorf("cfg %s: edge %d out-list mismatch at node %s(%d)", g.Name, eid, n.Name, n.ID)
			}
		}
		for _, eid := range n.In {
			if g.Edge(eid).To != n.ID {
				return fmt.Errorf("cfg %s: edge %d in-list mismatch at node %s(%d)", g.Name, eid, n.Name, n.ID)
			}
		}
		for i := range n.Instrs {
			if err := n.Instrs[i].Validate(numVars); err != nil {
				return fmt.Errorf("cfg %s: node %s(%d) instr %d: %w", g.Name, n.Name, n.ID, i, err)
			}
		}
	}
	for _, e := range g.Edges {
		if e.From < 0 || int(e.From) >= len(g.Nodes) || e.To < 0 || int(e.To) >= len(g.Nodes) {
			return fmt.Errorf("cfg %s: edge %d endpoint out of range", g.Name, e.ID)
		}
	}
	return nil
}
