package cfg

import "sort"

// DFS holds the result of a depth-first traversal from Entry: preorder and
// reverse-postorder numbers plus the set of retreating edges.
//
// Retreating edges (tail's DFS interval contains the head) are what the
// Ball-Larus profiler must record across: they are part of the minimal
// recording-edge set because removing them makes the graph acyclic. The
// traversal visits successors in slot order, so the result is
// deterministic for a given graph.
type DFS struct {
	Pre        []int // preorder number per node, -1 if unreachable
	RPO        []int // reverse-postorder number per node, -1 if unreachable
	RPOOrder   []NodeID
	Retreating map[EdgeID]bool
	reach      int
}

// DepthFirst traverses g from Entry.
func (g *Graph) DepthFirst() *DFS {
	d := &DFS{
		Pre:        make([]int, len(g.Nodes)),
		RPO:        make([]int, len(g.Nodes)),
		Retreating: map[EdgeID]bool{},
	}
	for i := range d.Pre {
		d.Pre[i] = -1
		d.RPO[i] = -1
	}
	var post []NodeID
	// state: 0 unvisited, 1 on stack (open), 2 done
	state := make([]uint8, len(g.Nodes))
	preN := 0

	// Iterative DFS with explicit stack to survive deep graphs.
	type frame struct {
		n    NodeID
		slot int
	}
	stack := []frame{{g.Entry, 0}}
	d.Pre[g.Entry] = preN
	preN++
	state[g.Entry] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		nd := g.Node(f.n)
		if f.slot < len(nd.Out) {
			eid := nd.Out[f.slot]
			f.slot++
			to := g.Edge(eid).To
			switch state[to] {
			case 0:
				d.Pre[to] = preN
				preN++
				state[to] = 1
				stack = append(stack, frame{to, 0})
			case 1:
				// Target still open: a retreating edge.
				d.Retreating[eid] = true
			}
			continue
		}
		state[f.n] = 2
		post = append(post, f.n)
		stack = stack[:len(stack)-1]
	}
	d.reach = len(post)
	for i, n := range post {
		rpo := len(post) - 1 - i
		d.RPO[n] = rpo
	}
	d.RPOOrder = make([]NodeID, len(post))
	for i, n := range post {
		d.RPOOrder[len(post)-1-i] = n
	}
	return d
}

// Reachable reports whether node n was reached from Entry.
func (d *DFS) Reachable(n NodeID) bool { return d.Pre[n] >= 0 }

// NumReachable returns the number of nodes reachable from Entry.
func (d *DFS) NumReachable() int { return d.reach }

// Dominators holds the immediate-dominator tree of a graph, computed with
// the Cooper-Harvey-Kennedy iterative algorithm over reverse postorder.
type Dominators struct {
	Idom []NodeID // immediate dominator per node; Entry's is itself; NoNode if unreachable
	dfs  *DFS
}

// ComputeDominators builds the dominator tree of g.
func (g *Graph) ComputeDominators() *Dominators {
	dfs := g.DepthFirst()
	idom := make([]NodeID, len(g.Nodes))
	for i := range idom {
		idom[i] = NoNode
	}
	idom[g.Entry] = g.Entry
	changed := true
	for changed {
		changed = false
		for _, n := range dfs.RPOOrder {
			if n == g.Entry {
				continue
			}
			var newIdom NodeID = NoNode
			for _, eid := range g.Node(n).In {
				p := g.Edge(eid).From
				if idom[p] == NoNode {
					continue // predecessor not processed yet / unreachable
				}
				if newIdom == NoNode {
					newIdom = p
				} else {
					newIdom = intersect(idom, dfs.RPO, newIdom, p)
				}
			}
			if newIdom != NoNode && idom[n] != newIdom {
				idom[n] = newIdom
				changed = true
			}
		}
	}
	return &Dominators{Idom: idom, dfs: dfs}
}

func intersect(idom []NodeID, rpo []int, a, b NodeID) NodeID {
	for a != b {
		for rpo[a] > rpo[b] {
			a = idom[a]
		}
		for rpo[b] > rpo[a] {
			b = idom[b]
		}
	}
	return a
}

// Dominates reports whether a dominates b (reflexively).
func (d *Dominators) Dominates(a, b NodeID) bool {
	if d.Idom[b] == NoNode {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := d.Idom[b]
		if next == b {
			return false // reached the root without meeting a
		}
		b = next
	}
}

// BackEdges returns the edges whose target dominates their source: the back
// edges of natural loops. On a reducible graph these coincide with the
// retreating edges; on an irreducible graph (such as the hot path graphs
// tracing produces — paper §4.1) some retreating edges are not back edges.
func (g *Graph) BackEdges() map[EdgeID]bool {
	dom := g.ComputeDominators()
	back := map[EdgeID]bool{}
	for _, e := range g.Edges {
		if dom.Idom[e.From] == NoNode {
			continue
		}
		if dom.Dominates(e.To, e.From) {
			back[e.ID] = true
		}
	}
	return back
}

// Reducible reports whether every retreating edge is a back edge in a
// natural loop. The paper observes that data-flow tracing can make a
// reducible CFG irreducible, so pathflow's solvers are iterative rather
// than elimination-based.
func (g *Graph) Reducible() bool {
	dfs := g.DepthFirst()
	back := g.BackEdges()
	for eid := range dfs.Retreating {
		if !back[eid] {
			return false
		}
	}
	return true
}

// Loop describes one natural loop.
type Loop struct {
	Head NodeID
	Body []NodeID // sorted, includes Head
}

// NaturalLoops returns the natural loops of g, one per back-edge target
// (bodies of back edges sharing a header are merged), ordered by header ID.
func (g *Graph) NaturalLoops() []Loop {
	back := g.BackEdges()
	bodies := map[NodeID]map[NodeID]bool{}
	for eid := range back {
		e := g.Edge(eid)
		head := e.To
		body := bodies[head]
		if body == nil {
			body = map[NodeID]bool{head: true}
			bodies[head] = body
		}
		// Walk backwards from the tail collecting nodes that reach the
		// tail without passing through the header.
		var stack []NodeID
		if !body[e.From] {
			body[e.From] = true
			stack = append(stack, e.From)
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, in := range g.Node(n).In {
				p := g.Edge(in).From
				if !body[p] {
					body[p] = true
					stack = append(stack, p)
				}
			}
		}
	}
	heads := make([]NodeID, 0, len(bodies))
	for h := range bodies {
		heads = append(heads, h)
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	loops := make([]Loop, 0, len(heads))
	for _, h := range heads {
		var ns []NodeID
		for n := range bodies[h] {
			ns = append(ns, n)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		loops = append(loops, Loop{Head: h, Body: ns})
	}
	return loops
}
