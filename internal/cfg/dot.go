package cfg

import (
	"fmt"
	"sort"
	"strings"

	"pathflow/internal/ir"
)

// DotOptions controls Dot rendering.
type DotOptions struct {
	// Instrs includes each block's instructions in its label.
	Instrs bool
	// VarNames supplies register names for instruction rendering.
	VarNames []string
	// Recording marks these edges with dashed lines, like the paper's
	// figures mark Ball-Larus recording edges.
	Recording map[EdgeID]bool
	// NodeLabel, if non-nil, overrides the label of a node.
	NodeLabel func(NodeID) string
}

// Dot renders the graph in Graphviz format.
func (g *Graph) Dot(opt DotOptions) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range g.Nodes {
		label := n.Name
		if label == "" {
			label = fmt.Sprintf("n%d", n.ID)
		}
		if opt.NodeLabel != nil {
			label = opt.NodeLabel(n.ID)
		}
		if opt.Instrs {
			var lines []string
			lines = append(lines, label)
			for i := range n.Instrs {
				lines = append(lines, instrLabel(&n.Instrs[i], opt.VarNames))
			}
			if n.Kind == TermBranch {
				cond := fmt.Sprintf("v%d", n.Cond)
				if opt.VarNames != nil && int(n.Cond) < len(opt.VarNames) && opt.VarNames[n.Cond] != "" {
					cond = opt.VarNames[n.Cond]
				}
				lines = append(lines, "branch "+cond)
			}
			label = strings.Join(lines, "\\l") + "\\l"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", n.ID, label)
	}
	for _, e := range g.Edges {
		attrs := []string{}
		if from := g.Node(e.From); from.Kind == TermBranch {
			if e.Slot == 0 {
				attrs = append(attrs, "label=\"T\"")
			} else {
				attrs = append(attrs, "label=\"F\"")
			}
		}
		if opt.Recording[e.ID] {
			attrs = append(attrs, "style=dashed")
		}
		fmt.Fprintf(&b, "  n%d -> n%d", e.From, e.To)
		if len(attrs) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(attrs, ", "))
		}
		b.WriteString(";\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func instrLabel(in *ir.Instr, names []string) string {
	s := in.String()
	if names == nil {
		return s
	}
	// Re-render with names by substituting vN tokens; cheaper to rebuild.
	return rename(s, names)
}

// rename replaces vN register tokens with their names where available.
func rename(s string, names []string) string {
	var b strings.Builder
	i := 0
	for i < len(s) {
		if s[i] == 'v' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' {
			j := i + 1
			n := 0
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				n = n*10 + int(s[j]-'0')
				j++
			}
			if n < len(names) && names[n] != "" {
				b.WriteString(names[n])
			} else {
				b.WriteString(s[i:j])
			}
			i = j
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

// String renders a compact text listing of the graph, stable across runs,
// useful in tests and golden files.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s entry=%d exit=%d\n", g.Name, g.Entry, g.Exit)
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  %s(%d):", nodeName(n), n.ID)
		for i := range n.Instrs {
			fmt.Fprintf(&b, " [%s]", n.Instrs[i].String())
		}
		fmt.Fprintf(&b, " %v ->", n.Kind)
		for _, eid := range n.Out {
			fmt.Fprintf(&b, " %s", nodeName(g.Node(g.Edge(eid).To)))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func nodeName(n *Node) string {
	if n.Name != "" {
		return n.Name
	}
	return fmt.Sprintf("n%d", n.ID)
}

// SortedEdgeIDs returns the keys of an edge set in ascending order; handy
// for deterministic test output.
func SortedEdgeIDs(set map[EdgeID]bool) []EdgeID {
	ids := make([]EdgeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
