package machine_test

import (
	"testing"

	"pathflow/internal/cfg"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	. "pathflow/internal/machine"
)

func TestDefaultCostModel(t *testing.T) {
	cm := DefaultCostModel()
	if cm.Op[ir.Const] >= cm.Op[ir.Mul] {
		t.Error("constants must be cheaper than multiplies for folding to pay")
	}
	if cm.Op[ir.Div] <= cm.Op[ir.Add] {
		t.Error("division must be expensive")
	}
	if cm.Op[ir.Nop] != 0 {
		t.Error("nop must be free")
	}
}

func TestBlockCost(t *testing.T) {
	cm := DefaultCostModel()
	g := cfg.New("t")
	a := g.AddNode("a")
	g.Node(a).Kind = cfg.TermReturn
	g.Node(a).Instrs = []ir.Instr{
		{Op: ir.Const, Dst: 0, A: ir.NoVar, B: ir.NoVar, K: 1},
		{Op: ir.Mul, Dst: 1, A: 0, B: 0},
	}
	g.AddEdge(g.Entry, a)
	g.AddEdge(a, g.Exit)
	want := cm.Op[ir.Const] + cm.Op[ir.Mul] + cm.Return
	if got := cm.BlockCost(g.Node(a)); got != want {
		t.Errorf("BlockCost = %d, want %d", got, want)
	}
}

func compile(t *testing.T, src string) *cfg.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLayoutContiguous(t *testing.T) {
	prog := compile(t, `
func f(a) { return a * 2; }
func main() { x = f(3); print(x); }`)
	l := NewLayout(prog)
	var addr int64
	for _, name := range prog.Order {
		f := prog.Funcs[name]
		for _, nd := range f.G.Nodes {
			if l.Base[name][nd.ID] != addr {
				t.Fatalf("block %s/%d at %d, want %d", name, nd.ID, l.Base[name][nd.ID], addr)
			}
			if l.Size[name][nd.ID] != int64(len(nd.Instrs))+1 {
				t.Fatalf("block %s/%d size %d", name, nd.ID, l.Size[name][nd.ID])
			}
			addr += l.Size[name][nd.ID]
		}
	}
	if l.Total != addr {
		t.Errorf("Total = %d, want %d", l.Total, addr)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	prog := compile(t, `
func main() {
	i = 0;
	s = 0;
	while (i < 100) {
		if (i % 3 == 0) { s = s + 2; } else { s = s * 2 % 1000; }
		i = i + 1;
	}
	print(s);
}`)
	cm := DefaultCostModel()
	cc := DefaultICache()
	s1, r1, err := Simulate(prog, interp.Options{}, cm, cc)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Simulate(prog, interp.Options{}, cm, cc)
	if err != nil {
		t.Fatal(err)
	}
	if *s1 != *s2 {
		t.Errorf("simulations differ: %+v vs %+v", s1, s2)
	}
	if s1.Cycles != s1.ComputeCycles+s1.Misses*cc.MissPenalty+s1.TakenTransfers*cm.TakenTransfer {
		t.Error("cycle accounting inconsistent")
	}
	if s1.ComputeCycles <= r1.DynInstrs {
		t.Errorf("compute cycles %d should exceed instruction count %d", s1.ComputeCycles, r1.DynInstrs)
	}
}

func TestStraightLineHasNoBrokenFallthrough(t *testing.T) {
	prog := compile(t, `func main() { x = 1; y = x + 2; print(y); }`)
	sim, _, err := Simulate(prog, interp.Options{}, DefaultCostModel(), DefaultICache())
	if err != nil {
		t.Fatal(err)
	}
	if sim.TakenTransfers != 0 {
		t.Errorf("straight-line program has %d broken fallthroughs", sim.TakenTransfers)
	}
}

func TestLoopPaysBackEdgeTransfers(t *testing.T) {
	prog := compile(t, `
func main() {
	i = 0;
	while (i < 50) { i = i + 1; }
	print(i);
}`)
	sim, _, err := Simulate(prog, interp.Options{}, DefaultCostModel(), DefaultICache())
	if err != nil {
		t.Fatal(err)
	}
	// Every iteration's back edge breaks the layout sequence once.
	if sim.TakenTransfers < 50 {
		t.Errorf("TakenTransfers = %d, want >= 50", sim.TakenTransfers)
	}
}

func TestICacheColdMissesScaleWithFootprint(t *testing.T) {
	small := compile(t, `func main() { print(1); }`)
	big := compile(t, `
func main() {
	i = 0;
	while (i < 4) {
		x = i * 3 + 1; x = x * 5 + 2; x = x * 7 + 3; x = x * 11 + 4;
		x = x * 13 + 5; x = x * 17 + 6; x = x * 19 + 7; x = x * 23 + 8;
		print(x);
		i = i + 1;
	}
}`)
	cm := DefaultCostModel()
	cc := DefaultICache()
	s1, _, err := Simulate(small, interp.Options{}, cm, cc)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Simulate(big, interp.Options{}, cm, cc)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Misses <= s1.Misses {
		t.Errorf("bigger code should miss more: %d vs %d", s2.Misses, s1.Misses)
	}
	// Re-executing the same loop hits the cache: misses far below one
	// per block execution.
	if s2.Misses*4 >= s2.ComputeCycles {
		t.Errorf("hot loop should mostly hit the cache (misses=%d)", s2.Misses)
	}
}

func TestICacheConflictsWhenFootprintExceedsCache(t *testing.T) {
	// Two alternating loop bodies whose combined footprint exceeds a
	// tiny cache conflict forever; the same program under a large cache
	// almost never misses after warmup.
	src := `
func main() {
	i = 0;
	s = 0;
	while (i < 500) {
		if (i % 2 == 0) {
			s = s + i * 3; s = s ^ 7; s = s + i * 5; s = s ^ 11;
			s = s + i * 7; s = s ^ 13; s = s + i * 11; s = s ^ 17;
		} else {
			s = s - i * 3; s = s ^ 19; s = s - i * 5; s = s ^ 23;
			s = s - i * 7; s = s ^ 29; s = s - i * 11; s = s ^ 31;
		}
		i = i + 1;
	}
	print(s);
}`
	prog := compile(t, src)
	cm := DefaultCostModel()
	tiny := ICacheConfig{Lines: 4, LineSize: 8, MissPenalty: 12}
	bigC := ICacheConfig{Lines: 1024, LineSize: 8, MissPenalty: 12}
	sTiny, _, err := Simulate(prog, interp.Options{}, cm, tiny)
	if err != nil {
		t.Fatal(err)
	}
	sBig, _, err := Simulate(prog, interp.Options{}, cm, bigC)
	if err != nil {
		t.Fatal(err)
	}
	if sTiny.Misses < 10*sBig.Misses {
		t.Errorf("tiny cache misses %d, big cache %d: expected heavy conflicts", sTiny.Misses, sBig.Misses)
	}
}

func TestICacheGeometryValidation(t *testing.T) {
	prog := compile(t, `func main() { print(1); }`)
	cm := DefaultCostModel()
	bad := []ICacheConfig{
		{Lines: 0, LineSize: 8},
		{Lines: 8, LineSize: 0},
		{Lines: 3, LineSize: 8},
		{Lines: 8, LineSize: 6},
	}
	for _, cc := range bad {
		if _, _, err := Simulate(prog, interp.Options{}, cm, cc); err == nil {
			t.Errorf("geometry %+v accepted", cc)
		}
	}
}

func TestSimulatePreservesUserHooks(t *testing.T) {
	prog := compile(t, `func main() { x = 1; print(x); }`)
	blocks := 0
	enters := 0
	opts := interp.Options{
		OnBlock: func(*cfg.Func, cfg.NodeID) { blocks++ },
		OnEnter: func(*cfg.Func) { enters++ },
	}
	_, res, err := Simulate(prog, opts, DefaultCostModel(), DefaultICache())
	if err != nil {
		t.Fatal(err)
	}
	if int64(blocks) != res.Steps {
		t.Errorf("user OnBlock saw %d blocks, run had %d", blocks, res.Steps)
	}
	if enters != 1 {
		t.Errorf("user OnEnter saw %d activations", enters)
	}
}
