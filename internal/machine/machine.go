// Package machine models the execution cost of a program run: a per-op
// cost table plus a direct-mapped instruction cache.
//
// The paper's Table 2 measures wall-clock time on an UltraSPARC, where
// the code growth introduced by tracing interacts with the instruction
// cache and branch predictor ("our experiments did not measure the effect
// on the instruction cache or branch predictor" — but the observed
// slowdowns are attributed to such effects). This package makes those
// effects explicit and reproducible: run time is
//
//	Σ executed-instruction costs + MissPenalty × i-cache misses
//
// so a program whose optimized form grows enough to thrash the modeled
// cache can lose more to misses than it gains from constant folding,
// reproducing the paper's mixed speedup/slowdown column.
package machine

import (
	"fmt"

	"pathflow/internal/cfg"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
)

// CostModel assigns abstract cycles to operations.
type CostModel struct {
	// Op[op] is the cost of executing one instruction with that opcode.
	Op [32]int64
	// Jump, Branch and Return are terminator costs.
	Jump, Branch, Return int64
	// TakenTransfer is the extra cost of a control transfer whose target
	// is not the next block in the code layout. Each block has at most
	// one fall-through predecessor, so graphs with duplicated paths pay
	// more of these — the paper's §6.1.1 names exactly this effect
	// ("tracing can introduce extra jumps") as a slowdown source.
	TakenTransfer int64
}

// DefaultCostModel returns a cost table with cheap moves/constants,
// moderate ALU operations and expensive multiplies/divides, so constant
// folding (which rewrites computations into Const loads) saves cycles.
func DefaultCostModel() *CostModel {
	cm := &CostModel{Jump: 1, Branch: 2, Return: 2, TakenTransfer: 4}
	for op := ir.Op(0); op < 32; op++ {
		cm.Op[op] = 2
	}
	cm.Op[ir.Nop] = 0
	cm.Op[ir.Const] = 1
	cm.Op[ir.Copy] = 1
	cm.Op[ir.Mul] = 4
	cm.Op[ir.Div] = 12
	cm.Op[ir.Mod] = 12
	cm.Op[ir.Input] = 3
	cm.Op[ir.Arg] = 1
	cm.Op[ir.Call] = 4
	cm.Op[ir.Print] = 3
	return cm
}

// BlockCost returns the cost of one execution of the block.
func (cm *CostModel) BlockCost(nd *cfg.Node) int64 {
	var c int64
	for i := range nd.Instrs {
		c += cm.Op[nd.Instrs[i].Op]
	}
	switch nd.Kind {
	case cfg.TermJump:
		c += cm.Jump
	case cfg.TermBranch:
		c += cm.Branch
	case cfg.TermReturn:
		c += cm.Return
	}
	return c
}

// ICacheConfig describes a direct-mapped instruction cache measured in
// instruction slots.
type ICacheConfig struct {
	// Lines is the number of cache lines; LineSize is instruction slots
	// per line. Both must be powers of two.
	Lines    int
	LineSize int
	// MissPenalty is the cycle cost of one line fill.
	MissPenalty int64
}

// DefaultICache returns the configuration used by the benchmark harness:
// 1024 lines × 8 slots = 8192 instruction slots, 30-cycle misses. The
// benchmark programs fit comfortably until tracing duplicates their hot
// regions; only heavily duplicated graphs start conflicting.
func DefaultICache() ICacheConfig {
	return ICacheConfig{Lines: 1024, LineSize: 8, MissPenalty: 12}
}

// Layout assigns every basic block of a program a contiguous address
// range of instruction slots (one slot per instruction plus one for the
// terminator), functions laid out in declaration order.
type Layout struct {
	// Base[fname][node] is the starting slot of the block.
	Base map[string][]int64
	// Size[fname][node] is the slot count of the block.
	Size map[string][]int64
	// Total is the program's static footprint in slots.
	Total int64
}

// NewLayout lays out the program.
func NewLayout(prog *cfg.Program) *Layout {
	l := &Layout{Base: map[string][]int64{}, Size: map[string][]int64{}}
	var addr int64
	for _, name := range prog.Order {
		f := prog.Funcs[name]
		base := make([]int64, f.G.NumNodes())
		size := make([]int64, f.G.NumNodes())
		for _, nd := range f.G.Nodes {
			base[nd.ID] = addr
			size[nd.ID] = int64(len(nd.Instrs)) + 1
			addr += size[nd.ID]
		}
		l.Base[name] = base
		l.Size[name] = size
	}
	l.Total = addr
	return l
}

// icache is the direct-mapped cache state.
type icache struct {
	cfg  ICacheConfig
	tags []int64
}

func newICache(c ICacheConfig) (*icache, error) {
	if c.Lines <= 0 || c.LineSize <= 0 {
		return nil, fmt.Errorf("machine: invalid icache geometry %+v", c)
	}
	if c.Lines&(c.Lines-1) != 0 || c.LineSize&(c.LineSize-1) != 0 {
		return nil, fmt.Errorf("machine: icache geometry must be powers of two, got %+v", c)
	}
	t := make([]int64, c.Lines)
	for i := range t {
		t[i] = -1
	}
	return &icache{cfg: c, tags: t}, nil
}

// touch accesses slots [base, base+size) and returns the number of misses.
func (ic *icache) touch(base, size int64) int64 {
	lineSize := int64(ic.cfg.LineSize)
	lines := int64(ic.cfg.Lines)
	first := base / lineSize
	last := (base + size - 1) / lineSize
	var misses int64
	for ln := first; ln <= last; ln++ {
		idx := ln & (lines - 1)
		if ic.tags[idx] != ln {
			ic.tags[idx] = ln
			misses++
		}
	}
	return misses
}

// Simulation reports the modeled run.
type Simulation struct {
	// Cycles is the total modeled run time.
	Cycles int64
	// ComputeCycles is the instruction-cost component.
	ComputeCycles int64
	// Misses is the number of i-cache line fills.
	Misses int64
	// TakenTransfers counts control transfers that broke the layout's
	// fall-through sequence.
	TakenTransfers int64
	// Footprint is the program's static size in instruction slots.
	Footprint int64
}

// Simulate executes prog under the interpreter while accounting block
// costs, fall-through breaks and i-cache behavior. The caller's interp
// hooks in opt are preserved.
func Simulate(prog *cfg.Program, opt interp.Options, cm *CostModel, cc ICacheConfig) (*Simulation, *interp.Result, error) {
	ic, err := newICache(cc)
	if err != nil {
		return nil, nil, err
	}
	layout := NewLayout(prog)
	sim := &Simulation{Footprint: layout.Total}
	// prev tracks the previously executed block per activation, so that
	// non-sequential transfers can be charged; calls interleave blocks
	// of different activations, hence the stack.
	type frame struct {
		fn   string
		prev cfg.NodeID
	}
	var stack []frame
	userEnter, userBlock, userExit := opt.OnEnter, opt.OnBlock, opt.OnExit
	opt.OnEnter = func(fn *cfg.Func) {
		stack = append(stack, frame{fn: fn.Name, prev: cfg.NoNode})
		if userEnter != nil {
			userEnter(fn)
		}
	}
	opt.OnExit = func(fn *cfg.Func) {
		stack = stack[:len(stack)-1]
		if userExit != nil {
			userExit(fn)
		}
	}
	opt.OnBlock = func(fn *cfg.Func, n cfg.NodeID) {
		nd := fn.G.Node(n)
		sim.ComputeCycles += cm.BlockCost(nd)
		sim.Misses += ic.touch(layout.Base[fn.Name][n], layout.Size[fn.Name][n])
		// Entry and Exit are virtual (no emitted code), so transfers
		// touching them never break the fall-through sequence.
		if len(stack) > 0 && n != fn.G.Exit {
			f := &stack[len(stack)-1]
			if f.prev != cfg.NoNode && f.prev != fn.G.Entry && n != f.prev+1 {
				sim.TakenTransfers++
			}
			f.prev = n
		}
		if userBlock != nil {
			userBlock(fn, n)
		}
	}
	res, err := interp.Run(prog, opt)
	if err != nil {
		return nil, res, err
	}
	sim.Cycles = sim.ComputeCycles + sim.Misses*cc.MissPenalty + sim.TakenTransfers*cm.TakenTransfer
	return sim, res, nil
}
