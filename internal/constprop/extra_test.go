package constprop_test

import (
	"testing"

	. "pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/lang"
)

func TestValueString(t *testing.T) {
	if (Value{Kind: Top}).String() != "⊤" {
		t.Error("⊤ string")
	}
	if (Value{Kind: Bottom}).String() != "⊥" {
		t.Error("⊥ string")
	}
	if ConstOf(-3).String() != "-3" {
		t.Error("const string")
	}
}

func TestEnvEqualLengths(t *testing.T) {
	a := NewEnv(2, Bottom)
	b := NewEnv(3, Bottom)
	if a.Equal(b) {
		t.Error("different lengths compared equal")
	}
	c := NewEnv(2, Bottom)
	c[0] = ConstOf(1)
	d := NewEnv(2, Bottom)
	d[0] = ConstOf(2)
	if c.Equal(d) {
		t.Error("different constants compared equal")
	}
	d[0] = ConstOf(1)
	if !c.Equal(d) {
		t.Error("equal envs compared unequal")
	}
}

func TestConstFlagsDirect(t *testing.T) {
	p, err := lang.Compile(`
func main() {
	k = 7;
	i = 0;
	while (i < 3) {
		d = k * 2;        // non-local constant (k crosses the block)
		lit = 5;          // local constant
		u = input() + d;  // not constant
		i = i + 1;
		print(u + lit);
	}
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Main()
	r := Analyze(f.G, f.NumVars(), true)
	foundNonlocal, foundLocalExcluded := false, false
	for _, nd := range f.G.Nodes {
		all := ConstFlags(f.G, nd.ID, r.EnvAt(nd.ID), f.NumVars(), false)
		nonlocal := ConstFlags(f.G, nd.ID, r.EnvAt(nd.ID), f.NumVars(), true)
		for i := range nd.Instrs {
			if nonlocal[i] && !all[i] {
				t.Fatal("nonlocal flags must be a subset of all flags")
			}
			if nonlocal[i] {
				foundNonlocal = true
			}
			if all[i] && !nonlocal[i] {
				foundLocalExcluded = true
			}
		}
	}
	if !foundNonlocal {
		t.Error("no non-local constant found")
	}
	if !foundLocalExcluded {
		t.Error("no local constant was excluded")
	}
}

func TestProblemEntryOverride(t *testing.T) {
	env := NewEnv(3, Bottom)
	env[1] = ConstOf(9)
	p := &Problem{NumVars: 3, Conditional: true, EntryEnv: env}
	got := p.Entry().(Env)
	if got[1] != ConstOf(9) {
		t.Errorf("entry env override ignored: %v", got[1])
	}
	// The returned fact is a clone: mutating it must not affect the
	// problem's template.
	got[1] = ConstOf(1)
	if env[1] != ConstOf(9) {
		t.Error("Entry returned the template without cloning")
	}
	var _ dataflow.Fact = got
}

func TestResultEnvAtUnreachedWithNoReachedNodes(t *testing.T) {
	// EnvAt on a Result whose graph has unreached nodes must synthesize
	// an all-⊤ env of the right size by inspecting any reached fact.
	p, err := lang.Compile(`
func main() {
	c = 0;
	if (c != 0) { x = 5; print(x); }
	print(c);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Main()
	r := Analyze(f.G, f.NumVars(), true)
	for _, nd := range f.G.Nodes {
		env := r.EnvAt(nd.ID)
		if len(env) != f.NumVars() {
			t.Fatalf("EnvAt(%d) has %d vars, want %d", nd.ID, len(env), f.NumVars())
		}
	}
}
