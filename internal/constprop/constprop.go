// Package constprop implements constant propagation: the constant
// lattice, per-register environments, instruction transfer functions, the
// Wegman-Zadek conditional constant algorithm the paper uses as its
// data-flow client, and the purely local (single basic block) analysis
// that defines the paper's "Local" category.
//
// The implementation mirrors the paper's §6 description of its SUIF pass:
// a worklist algorithm that symbolically executes a routine starting at
// its entry node and propagates values only across the legs of branches
// that can execute given the current assignment of values to variables.
// It is conservative in the same ways: calls, input() and arg() produce
// unknown (⊥) values.
package constprop

import (
	"fmt"
	"strings"

	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/ir"
)

// Kind classifies a lattice value.
type Kind uint8

// Lattice: Top (no evidence yet) ≥ Const(k) ≥ Bottom (not constant).
const (
	Top Kind = iota
	Const
	Bottom
)

// Value is one element of the constant lattice.
type Value struct {
	Kind Kind
	K    ir.Value // meaningful only when Kind == Const
}

// ConstOf returns the Const lattice value k.
func ConstOf(k ir.Value) Value { return Value{Kind: Const, K: k} }

// Meet combines two lattice values.
func (a Value) Meet(b Value) Value {
	switch {
	case a.Kind == Top:
		return b
	case b.Kind == Top:
		return a
	case a.Kind == Bottom || b.Kind == Bottom:
		return Value{Kind: Bottom}
	case a.K == b.K:
		return a
	default:
		return Value{Kind: Bottom}
	}
}

// IsConst reports whether the value is a known constant.
func (a Value) IsConst() bool { return a.Kind == Const }

func (a Value) String() string {
	switch a.Kind {
	case Top:
		return "⊤"
	case Bottom:
		return "⊥"
	default:
		return fmt.Sprintf("%d", a.K)
	}
}

// Env maps every register of a function to a lattice value. Envs are
// treated as immutable facts; all operations return fresh slices.
type Env []Value

// NewEnv returns an environment with every register set to k.
func NewEnv(numVars int, k Kind) Env {
	e := make(Env, numVars)
	for i := range e {
		e[i] = Value{Kind: k}
	}
	return e
}

// Clone copies the environment.
func (e Env) Clone() Env { return append(Env(nil), e...) }

// Meet combines two environments pointwise.
func (e Env) Meet(o Env) Env {
	out := make(Env, len(e))
	for i := range e {
		out[i] = e[i].Meet(o[i])
	}
	return out
}

// Equal reports pointwise equality.
func (e Env) Equal(o Env) bool {
	if len(e) != len(o) {
		return false
	}
	for i := range e {
		if e[i].Kind != o[i].Kind {
			return false
		}
		if e[i].Kind == Const && e[i].K != o[i].K {
			return false
		}
	}
	return true
}

// String renders the non-⊥ entries using the function's register names.
func (e Env) String(names []string) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, v := range e {
		if v.Kind == Bottom {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		name := fmt.Sprintf("v%d", i)
		if names != nil && i < len(names) && names[i] != "" {
			name = names[i]
		}
		fmt.Fprintf(&b, "%s=%s", name, v.String())
	}
	b.WriteByte('}')
	return b.String()
}

// EvalInstr computes the lattice value an instruction's destination takes
// under env. Instructions without a destination yield ⊥.
func EvalInstr(in *ir.Instr, env Env) Value {
	switch {
	case in.Op == ir.Const:
		return ConstOf(in.K)
	case in.Op.Opaque() || in.Op == ir.Print || in.Op == ir.Nop:
		return Value{Kind: Bottom}
	case in.Op.IsUnary():
		a := env[in.A]
		switch a.Kind {
		case Const:
			return ConstOf(ir.EvalUn(in.Op, a.K))
		case Top:
			return Value{Kind: Top}
		}
		return Value{Kind: Bottom}
	case in.Op.IsBinary():
		a, b := env[in.A], env[in.B]
		if a.Kind == Const && b.Kind == Const {
			return ConstOf(ir.EvalBin(in.Op, a.K, b.K))
		}
		if a.Kind == Bottom || b.Kind == Bottom {
			return Value{Kind: Bottom}
		}
		return Value{Kind: Top}
	}
	return Value{Kind: Bottom}
}

// ApplyInstr updates env in place with the effect of one instruction and
// returns the value written (⊥ for instructions with no destination).
func ApplyInstr(in *ir.Instr, env Env) Value {
	v := EvalInstr(in, env)
	if in.HasDst() {
		env[in.Dst] = v
	}
	return v
}

// TransferBlock symbolically executes node n's instructions, returning
// the environment at the block's end and, when vals is true, the value
// each instruction's destination takes.
func TransferBlock(g *cfg.Graph, n cfg.NodeID, in Env, vals bool) (Env, []Value) {
	env := in.Clone()
	nd := g.Node(n)
	var out []Value
	if vals {
		out = make([]Value, len(nd.Instrs))
	}
	for i := range nd.Instrs {
		v := ApplyInstr(&nd.Instrs[i], env)
		if vals {
			out[i] = v
		}
	}
	return env, out
}

// Problem is the constant-propagation data-flow problem over one graph.
type Problem struct {
	NumVars int
	// Conditional enables Wegman-Zadek branch pruning: a branch whose
	// condition is a known constant propagates only along the taken
	// leg, and a branch whose condition is still ⊤ propagates along
	// neither. When false the problem is the plain iterative one.
	Conditional bool
	// EntryEnv optionally overrides the environment at function entry;
	// nil uses ⊥ for parameters and ⊥ for all other registers.
	EntryEnv Env
	// Infeasible, when non-nil, marks edges (indexed by cfg.EdgeID) a
	// prior feasibility analysis proved no execution can take. Transfer
	// withholds facts along them, so the solve prunes their targets the
	// same way Wegman-Zadek prunes constant-condition legs. The solver
	// never delivers along a withheld edge, so the mask works identically
	// under the boxed, packed and sparse backends.
	Infeasible []bool
}

var _ dataflow.Problem = (*Problem)(nil)

// Entry returns the entry fact.
func (p *Problem) Entry() dataflow.Fact {
	if p.EntryEnv != nil {
		return p.EntryEnv.Clone()
	}
	return NewEnv(p.NumVars, Bottom)
}

// Meet combines two environment facts.
func (p *Problem) Meet(a, b dataflow.Fact) dataflow.Fact {
	return a.(Env).Meet(b.(Env))
}

// Equal compares two environment facts.
func (p *Problem) Equal(a, b dataflow.Fact) bool {
	return a.(Env).Equal(b.(Env))
}

// Transfer symbolically executes the block and distributes the resulting
// environment to the executable out-edges.
func (p *Problem) Transfer(g *cfg.Graph, n cfg.NodeID, in dataflow.Fact, out []dataflow.Fact) {
	env, _ := TransferBlock(g, n, in.(Env), false)
	nd := g.Node(n)
	switch nd.Kind {
	case cfg.TermJump, cfg.TermReturn:
		out[0] = env
	case cfg.TermBranch:
		if !p.Conditional {
			out[0], out[1] = env, env.Clone()
			return
		}
		switch c := env[nd.Cond]; c.Kind {
		case Top:
			// No evidence about the condition yet: neither leg is
			// known executable (optimistic).
		case Const:
			if c.K != 0 {
				out[0] = env
			} else {
				out[1] = env
			}
		case Bottom:
			out[0], out[1] = env, env.Clone()
		}
	case cfg.TermHalt:
		// no successors
	}
	if p.Infeasible != nil {
		for i, eid := range nd.Out {
			if i < len(out) && int(eid) < len(p.Infeasible) && p.Infeasible[eid] {
				out[i] = nil
			}
		}
	}
}

// Result bundles a solved constant-propagation problem with its graph.
type Result struct {
	G   *cfg.Graph
	Sol *dataflow.Solution
}

// Analyze runs constant propagation over g. conditional selects the
// Wegman-Zadek algorithm (true) or plain iterative propagation (false).
func Analyze(g *cfg.Graph, numVars int, conditional bool) *Result {
	p := &Problem{NumVars: numVars, Conditional: conditional}
	return &Result{G: g, Sol: dataflow.Solve(g, p)}
}

// AnalyzeBoxedMasked runs boxed constant propagation with the given
// infeasible-edge mask (nil behaves like Analyze).
func AnalyzeBoxedMasked(g *cfg.Graph, numVars int, conditional bool, infeasible []bool) *Result {
	p := &Problem{NumVars: numVars, Conditional: conditional, Infeasible: infeasible}
	return &Result{G: g, Sol: dataflow.Solve(g, p)}
}

// EnvAt returns the environment at node n's entry; unreached nodes yield
// the all-⊤ environment (so meets over vertex sets treat them as the
// identity, as the reduction algorithm requires).
func (r *Result) EnvAt(n cfg.NodeID) Env {
	if !r.Sol.Reached[n] {
		// Size from any reached env; fall back to empty.
		for _, f := range r.Sol.In {
			if f != nil {
				return NewEnv(len(f.(Env)), Top)
			}
		}
		return nil
	}
	return r.Sol.In[n].(Env)
}

// InstrValues returns the lattice value of each instruction's destination
// in node n under the solved environment. Unreached nodes yield values
// under the all-⊤ environment.
func (r *Result) InstrValues(n cfg.NodeID) []Value {
	_, vals := TransferBlock(r.G, n, r.EnvAt(n), true)
	return vals
}

// Reached reports whether the analysis found node n executable.
func (r *Result) Reached(n cfg.NodeID) bool { return r.Sol.Reached[n] }

// LocalValues returns the value of each instruction in n derivable by
// purely local analysis: symbolic execution of the block alone, starting
// from an all-⊥ environment. Instructions constant under this analysis
// form the paper's "Local" category (e.g. every Const instruction).
func LocalValues(g *cfg.Graph, n cfg.NodeID, numVars int) []Value {
	_, vals := TransferBlock(g, n, NewEnv(numVars, Bottom), true)
	return vals
}

// ConstFlags reports, per instruction of node n, whether the instruction
// has a constant result under env. Only pure instructions with a
// destination qualify. When excludeLocal is set, instructions already
// constant under local analysis (the paper's trivial constants) are
// skipped — the remaining flags mark the paper's "non-local" constants.
func ConstFlags(g *cfg.Graph, n cfg.NodeID, env Env, numVars int, excludeLocal bool) []bool {
	nd := g.Node(n)
	flags := make([]bool, len(nd.Instrs))
	_, vals := TransferBlock(g, n, env, true)
	var local []Value
	if excludeLocal {
		local = LocalValues(g, n, numVars)
	}
	for i := range nd.Instrs {
		in := &nd.Instrs[i]
		if !in.Op.IsPure() || !in.HasDst() {
			continue
		}
		if !vals[i].IsConst() {
			continue
		}
		if excludeLocal && local[i].IsConst() {
			continue
		}
		flags[i] = true
	}
	return flags
}
