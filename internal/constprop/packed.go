package constprop

import (
	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/kernel"
	"pathflow/internal/ir"
)

// packedDomain is the SoA kernel for the constant lattice: environments
// live as rows of a (kind []uint8, val []int64) arena instead of boxed
// []Value slices. Cells are kept normalized (val = 0 unless Const), so
// raw cell comparison is exactly Env.Equal.
type packedDomain struct {
	g           *cfg.Graph
	conditional bool
	cells       *kernel.KV
}

const (
	pkTop    = uint8(Top)
	pkConst  = uint8(Const)
	pkBottom = uint8(Bottom)
)

func (d *packedDomain) Direction() dataflow.Direction { return dataflow.Forward }
func (d *packedDomain) Grow(rows int)                 { d.cells.Grow(rows) }
func (d *packedDomain) Boundary(dst int)              { d.cells.Fill(dst, pkBottom) }
func (d *packedDomain) Copy(dst, src int)             { d.cells.Copy(dst, src) }
func (d *packedDomain) Equal(a, b int) bool           { return d.cells.Equal(a, b) }

// Meet folds src into dst pointwise (Value.Meet over normalized cells).
func (d *packedDomain) Meet(dst, src int) bool {
	dk, dv := d.cells.Row(dst)
	sk, sv := d.cells.Row(src)
	changed := false
	for i := range dk {
		k, v := meetCell(dk[i], dv[i], sk[i], sv[i])
		if k != dk[i] || v != dv[i] {
			dk[i], dv[i] = k, v
			changed = true
		}
	}
	return changed
}

func meetCell(ak uint8, av int64, bk uint8, bv int64) (uint8, int64) {
	switch {
	case ak == pkTop:
		return bk, bv
	case bk == pkTop:
		return ak, av
	case ak == pkBottom || bk == pkBottom:
		return pkBottom, 0
	case av == bv:
		return ak, av
	default:
		return pkBottom, 0
	}
}

// evalCell is EvalInstr over SoA cells.
func evalCell(in *ir.Instr, k []uint8, v []int64) (uint8, int64) {
	switch {
	case in.Op == ir.Const:
		return pkConst, in.K
	case in.Op.Opaque() || in.Op == ir.Print || in.Op == ir.Nop:
		return pkBottom, 0
	case in.Op.IsUnary():
		switch k[in.A] {
		case pkConst:
			return pkConst, ir.EvalUn(in.Op, v[in.A])
		case pkTop:
			return pkTop, 0
		}
		return pkBottom, 0
	case in.Op.IsBinary():
		ak, bk := k[in.A], k[in.B]
		if ak == pkConst && bk == pkConst {
			return pkConst, ir.EvalBin(in.Op, v[in.A], v[in.B])
		}
		if ak == pkBottom || bk == pkBottom {
			return pkBottom, 0
		}
		return pkTop, 0
	}
	return pkBottom, 0
}

// Transfer symbolically executes the block in scratch row 0 and marks
// the executable out-edges — the Wegman-Zadek dispatch of the boxed
// Transfer, without the Env clones (both branch legs share the scratch
// row; the solver copies on delivery).
func (d *packedDomain) Transfer(n cfg.NodeID, in, scratch int, slots []int8) {
	d.cells.Copy(scratch, in)
	k, v := d.cells.Row(scratch)
	nd := d.g.Node(n)
	for i := range nd.Instrs {
		ins := &nd.Instrs[i]
		ck, cv := evalCell(ins, k, v)
		if ins.HasDst() {
			k[ins.Dst], v[ins.Dst] = ck, cv
		}
	}
	switch nd.Kind {
	case cfg.TermJump, cfg.TermReturn:
		slots[0] = 0
	case cfg.TermBranch:
		if !d.conditional {
			slots[0], slots[1] = 0, 0
			return
		}
		switch k[nd.Cond] {
		case pkTop:
			// No evidence about the condition yet: neither leg is
			// known executable (optimistic).
		case pkConst:
			if v[nd.Cond] != 0 {
				slots[0] = 0
			} else {
				slots[1] = 0
			}
		default:
			slots[0], slots[1] = 0, 0
		}
	case cfg.TermHalt:
		// no successors
	}
}

// env boxes row r into a standard Env.
func (d *packedDomain) env(r int) Env {
	k, v := d.cells.Row(r)
	e := make(Env, len(k))
	for i := range k {
		e[i] = Value{Kind: Kind(k[i]), K: v[i]}
	}
	return e
}

// PackedSolver builds a reusable kernel solver for constant propagation
// over g: every Run() re-solves from scratch without allocating. The
// allocs-per-op gate in ci.sh benchmarks exactly this entry point;
// AnalyzePacked wraps it for one-shot use.
func PackedSolver(g *cfg.Graph, numVars int, conditional bool) *kernel.Solver {
	d := &packedDomain{g: g, conditional: conditional, cells: kernel.NewKV(numVars)}
	return kernel.NewSolver(g, d)
}

// AnalyzePacked runs constant propagation on the packed SoA kernel. The
// solution is pointwise equal to Analyze's, iteration counts included.
func AnalyzePacked(g *cfg.Graph, numVars int, conditional bool) *Result {
	d := &packedDomain{g: g, conditional: conditional, cells: kernel.NewKV(numVars)}
	s := kernel.NewSolver(g, d)
	s.Run()
	return &Result{G: g, Sol: s.Materialize(func(row int) dataflow.Fact { return d.env(row) })}
}

// AnalyzeWith dispatches Analyze on the requested kernel backend.
func AnalyzeWith(g *cfg.Graph, numVars int, conditional bool, k dataflow.Kernel) *Result {
	if k == dataflow.KernelBoxed {
		return Analyze(g, numVars, conditional)
	}
	return AnalyzePacked(g, numVars, conditional)
}
