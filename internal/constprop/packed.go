package constprop

import (
	"encoding/binary"
	"math/bits"

	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/kernel"
	"pathflow/internal/ir"
)

// packedDomain is the SoA kernel for the constant lattice: environments
// live as rows of a (kind []uint8, val []int64) arena instead of boxed
// []Value slices. Cells are kept normalized (val = 0 unless Const), so
// raw cell comparison is exactly Env.Equal.
//
// In sparse mode (bot non-nil) the domain additionally tracks, per node
// row, two cell bitsets that let meets skip settled cells up front:
//
//   - bot: cells already at ⊥. The lattice only descends (⊤ → const →
//     ⊥), so a ⊥ destination cell can never change again — drop it
//     from the mask.
//   - top: cells still at ⊤. A ⊤ *source* cell is the meet identity —
//     the destination cell cannot change, so drop it too.
//
// On hot-path graphs most cells are one or the other (a variable is
// either untouched on the path, or unknown after an opaque merge), so
// the expensive full-mask first deliveries shrink to the few cells
// carrying actual constants. Both bitsets are maintained word-parallel:
// Copy installs the source's masks, Transfer re-derives the scratch
// row's masks from its final kind bytes in one branchless SWAR pass,
// and MeetMasked clears/sets bits exactly where it changes cells — so
// stale state from a previous Run is overwritten before it is ever
// read.
type packedDomain struct {
	g           *cfg.Graph
	conditional bool
	infeasible  []bool // optional per-EdgeID feasibility mask; masked slots stay -1
	cells       *kernel.KV
	nodeRows    int      // rows [0, nodeRows) are per-node rows
	bot         []uint64 // nodeRows × cw cells-at-⊥ bitsets; nil in dense mode
	top         []uint64 // nodeRows × cw cells-at-⊤ bitsets; nil in dense mode
	defBits     []uint64 // nodeRows × cw static def cells per node
	scratchBot  []uint64 // cw: ⊥ cells of the transfer scratch row
	scratchTop  []uint64 // cw: ⊤ cells of the transfer scratch row
}

const (
	pkTop    = uint8(Top)
	pkConst  = uint8(Const)
	pkBottom = uint8(Bottom)
)

func (d *packedDomain) Direction() dataflow.Direction { return dataflow.Forward }
func (d *packedDomain) Grow(rows int)                 { d.cells.Grow(rows) }
func (d *packedDomain) Boundary(dst int) {
	d.cells.Fill(dst, pkBottom)
	if d.bot != nil && dst < d.nodeRows {
		b, t := d.botRow(dst), d.topRow(dst)
		left := d.cells.Width
		for w := range b {
			span := left
			if span > 64 {
				span = 64
			}
			if span == 64 {
				b[w] = ^uint64(0)
			} else {
				b[w] = 1<<span - 1
			}
			t[w] = 0
			left -= span
		}
	}
}

// Copy keeps the ⊥ bitsets in step without rescanning: a node-row
// source shares its bot row, and the only other source the sparse
// kernel copies from is the transfer scratch row, whose bot mask
// Transfer maintains incrementally in scratchBot.
func (d *packedDomain) Copy(dst, src int) {
	d.cells.Copy(dst, src)
	if d.bot != nil && dst < d.nodeRows {
		if src < d.nodeRows {
			copy(d.botRow(dst), d.botRow(src))
			copy(d.topRow(dst), d.topRow(src))
		} else {
			copy(d.botRow(dst), d.scratchBot)
			copy(d.topRow(dst), d.scratchTop)
		}
	}
}

// botRow returns node row r's cells-at-⊥ bitset.
func (d *packedDomain) botRow(r int) []uint64 {
	cw := (d.cells.Width + 63) / 64
	return d.bot[r*cw : (r+1)*cw : (r+1)*cw]
}

// topRow returns node row r's cells-at-⊤ bitset.
func (d *packedDomain) topRow(r int) []uint64 {
	cw := (d.cells.Width + 63) / 64
	return d.top[r*cw : (r+1)*cw : (r+1)*cw]
}

// defRow returns node r's static def-cell bitset (sparse mode only).
func (d *packedDomain) defRow(r cfg.NodeID) []uint64 {
	cw := (d.cells.Width + 63) / 64
	return d.defBits[int(r)*cw : (int(r)+1)*cw : (int(r)+1)*cw]
}

func (d *packedDomain) Equal(a, b int) bool { return d.cells.Equal(a, b) }

// Meet folds src into dst pointwise (Value.Meet over normalized cells).
func (d *packedDomain) Meet(dst, src int) bool {
	dk, dv := d.cells.Row(dst)
	sk, sv := d.cells.Row(src)
	changed := false
	for i := range dk {
		k, v := meetCell(dk[i], dv[i], sk[i], sv[i])
		if k != dk[i] || v != dv[i] {
			dk[i], dv[i] = k, v
			changed = true
		}
	}
	return changed
}

func meetCell(ak uint8, av int64, bk uint8, bv int64) (uint8, int64) {
	switch {
	case ak == pkTop:
		return bk, bv
	case bk == pkTop:
		return ak, av
	case ak == pkBottom || bk == pkBottom:
		return pkBottom, 0
	case av == bv:
		return ak, av
	default:
		return pkBottom, 0
	}
}

// evalCell is EvalInstr over SoA cells.
func evalCell(in *ir.Instr, k []uint8, v []int64) (uint8, int64) {
	switch {
	case in.Op == ir.Const:
		return pkConst, in.K
	case in.Op.Opaque() || in.Op == ir.Print || in.Op == ir.Nop:
		return pkBottom, 0
	case in.Op.IsUnary():
		switch k[in.A] {
		case pkConst:
			return pkConst, ir.EvalUn(in.Op, v[in.A])
		case pkTop:
			return pkTop, 0
		}
		return pkBottom, 0
	case in.Op.IsBinary():
		ak, bk := k[in.A], k[in.B]
		if ak == pkConst && bk == pkConst {
			return pkConst, ir.EvalBin(in.Op, v[in.A], v[in.B])
		}
		if ak == pkBottom || bk == pkBottom {
			return pkBottom, 0
		}
		return pkTop, 0
	}
	return pkBottom, 0
}

// Transfer symbolically executes the block in scratch row 0 and marks
// the executable out-edges — the Wegman-Zadek dispatch of the boxed
// Transfer, without the Env clones (both branch legs share the scratch
// row; the solver copies on delivery).
func (d *packedDomain) Transfer(n cfg.NodeID, in, scratch int, slots []int8) {
	d.cells.Copy(scratch, in)
	k, v := d.cells.Row(scratch)
	nd := d.g.Node(n)
	for i := range nd.Instrs {
		ins := &nd.Instrs[i]
		ck, cv := evalCell(ins, k, v)
		if ins.HasDst() {
			k[ins.Dst], v[ins.Dst] = ck, cv
		}
	}
	if d.bot != nil && in < d.nodeRows {
		// Bring the scratch row's ⊥/⊤ masks in step: outside the def
		// cells they are the input's; words holding defs are re-derived
		// from the final kind bytes in a branchless SWAR pass.
		copy(d.scratchBot, d.botRow(in))
		copy(d.scratchTop, d.topRow(in))
		for w, m := range d.defRow(n) {
			if m == 0 {
				continue
			}
			base := w * 64
			end := base + 64
			if end > len(k) {
				end = len(k)
			}
			bw, tw := kindMasks(k[base:end])
			d.scratchBot[w] = d.scratchBot[w]&^m | bw&m
			d.scratchTop[w] = d.scratchTop[w]&^m | tw&m
		}
	}
	switch nd.Kind {
	case cfg.TermJump, cfg.TermReturn:
		slots[0] = 0
	case cfg.TermBranch:
		if !d.conditional {
			slots[0], slots[1] = 0, 0
			return
		}
		switch k[nd.Cond] {
		case pkTop:
			// No evidence about the condition yet: neither leg is
			// known executable (optimistic).
		case pkConst:
			if v[nd.Cond] != 0 {
				slots[0] = 0
			} else {
				slots[1] = 0
			}
		default:
			slots[0], slots[1] = 0, 0
		}
	case cfg.TermHalt:
		// no successors
	}
	if d.infeasible != nil {
		for i, eid := range nd.Out {
			if i < len(slots) && int(eid) < len(d.infeasible) && d.infeasible[eid] {
				slots[i] = -1
			}
		}
	}
}

// Cells implements kernel.SparseDomain: one cell per register.
func (d *packedDomain) Cells() int { return d.cells.Width }

// Chain implements kernel.SparseDomain. A block's symbolic execution
// writes only its instruction destinations; it reads its instruction
// operands and, under conditional dispatch, the branch condition (whose
// value picks the executable legs). Every other register passes
// through.
func (d *packedDomain) Chain(n cfg.NodeID, defs, uses []uint64) {
	set := func(m []uint64, v ir.Var) {
		if v.Valid() {
			m[int(v)/64] |= 1 << (uint32(v) % 64)
		}
	}
	nd := d.g.Node(n)
	var buf []ir.Var
	for i := range nd.Instrs {
		ins := &nd.Instrs[i]
		if ins.HasDst() {
			set(defs, ins.Dst)
		}
		buf = ins.Uses(buf[:0])
		for _, u := range buf {
			set(uses, u)
		}
	}
	if nd.Kind == cfg.TermBranch && d.conditional {
		set(uses, nd.Cond)
	}
}

// kindMasks computes the ⊥ and ⊤ cell bitsets of up to 64 kind bytes,
// eight cells per word op: a SWAR per-byte equality test (exact — the
// carry stays inside each byte) packs the matches of each 8-byte chunk
// into 8 mask bits via the kindergarten multiply. Deriving the masks
// from the data keeps the per-instruction eval loop clean and is
// inherently in step — there is no incremental bookkeeping to
// invalidate.
func kindMasks(k []uint8) (bw, tw uint64) {
	const (
		lo7 uint64 = 0x7f7f7f7f7f7f7f7f
		hi  uint64 = 0x8080808080808080
		mul uint64 = 0x0102040810204080 // packs per-byte high bits into bits 56..63
		bb  uint64 = 0x0101010101010101 * uint64(pkBottom)
	)
	shift := 0
	o := 0
	for ; o+8 <= len(k); o += 8 {
		x := binary.LittleEndian.Uint64(k[o:])
		y := x ^ bb // zero byte ⇔ cell at ⊥
		y = (y&lo7 + lo7) | y
		bw |= (^y & hi >> 7) * mul >> 56 << shift
		y = (x&lo7 + lo7) | x // zero byte ⇔ cell at ⊤ (pkTop is 0)
		tw |= (^y & hi >> 7) * mul >> 56 << shift
		shift += 8
	}
	for ; o < len(k); o++ {
		switch k[o] {
		case pkBottom:
			bw |= 1 << shift
		case pkTop:
			tw |= 1 << shift
		}
		shift++
	}
	return bw, tw
}

// MeetMasked implements kernel.SparseDomain: meetCell over exactly the
// masked cells. Words whose mask covers their whole cell span — the
// first delivery along an edge is a full meet — take a straight scan;
// sparser words iterate bit by bit so narrow deltas touch narrow
// slices of wide rows.
func (d *packedDomain) MeetMasked(dst, src int, mask, dirty []uint64) bool {
	dk, dv := d.cells.Row(dst)
	sk, sv := d.cells.Row(src)
	var bot, top, stop []uint64
	if d.bot != nil && dst < d.nodeRows {
		bot, top = d.botRow(dst), d.topRow(dst)
		if src < d.nodeRows {
			stop = d.topRow(src)
		} else {
			stop = d.scratchTop
		}
	}
	changed := false
	for w, m := range mask {
		if bot != nil {
			// ⊥ destination cells can never change again, and ⊤ source
			// cells are the meet identity; drop both from the mask.
			m &^= bot[w] | stop[w]
		}
		if m == 0 {
			continue
		}
		base := w * 64
		if base >= len(dk) {
			break
		}
		span := len(dk) - base
		if span > 64 {
			span = 64
		}
		var dw, bw uint64
		if span == 64 && m == ^uint64(0) || span < 64 && m == 1<<span-1 {
			wk, wv := dk[base:base+span], dv[base:base+span]
			xk, xv := sk[base:base+span], sv[base:base+span]
			for i := 0; i < span; i++ {
				k, v := meetCell(wk[i], wv[i], xk[i], xv[i])
				if k != wk[i] || v != wv[i] {
					wk[i], wv[i] = k, v
					dw |= 1 << i
					if k == pkBottom {
						bw |= 1 << i
					}
				}
			}
		} else {
			for ; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				if i >= span {
					break
				}
				k, v := meetCell(dk[base+i], dv[base+i], sk[base+i], sv[base+i])
				if k != dk[base+i] || v != dv[base+i] {
					dk[base+i], dv[base+i] = k, v
					dw |= 1 << i
					if k == pkBottom {
						bw |= 1 << i
					}
				}
			}
		}
		if dw != 0 {
			dirty[w] |= dw
			changed = true
			if bot != nil {
				// Changed cells were met with a non-⊤ source, so they
				// are no longer ⊤; the ones that hit ⊥ are settled.
				bot[w] |= bw
				top[w] &^= dw
			}
		}
	}
	return changed
}

// env boxes row r into a standard Env.
func (d *packedDomain) env(r int) Env {
	k, v := d.cells.Row(r)
	e := make(Env, len(k))
	for i := range k {
		e[i] = Value{Kind: Kind(k[i]), K: v[i]}
	}
	return e
}

// PackedSolver builds a reusable kernel solver for constant propagation
// over g: every Run() re-solves from scratch without allocating. The
// allocs-per-op gate in ci.sh benchmarks exactly this entry point;
// AnalyzePacked wraps it for one-shot use.
func PackedSolver(g *cfg.Graph, numVars int, conditional bool) *kernel.Solver {
	d := &packedDomain{g: g, conditional: conditional, cells: kernel.NewKV(numVars)}
	return kernel.NewSolver(g, d)
}

// SparseSolver builds a reusable sparse def-use-chain solver for
// constant propagation over g: the chains are built once here, and
// every Run() re-solves sparsely without allocating. BenchmarkAnalyzeSparse
// and its allocs gate in ci.sh benchmark exactly this entry point.
func SparseSolver(g *cfg.Graph, numVars int, conditional bool) *kernel.Solver {
	d := newSparseDomain(g, numVars, conditional)
	return kernel.NewSparseSolver(g, d)
}

// newSparseDomain builds a packedDomain with the cells-at-⊥ tracking
// the sparse kernel exploits (dense solvers skip the bookkeeping).
func newSparseDomain(g *cfg.Graph, numVars int, conditional bool) *packedDomain {
	d := &packedDomain{g: g, conditional: conditional, cells: kernel.NewKV(numVars)}
	cw := (numVars + 63) / 64
	d.nodeRows = g.NumNodes()
	d.bot = make([]uint64, d.nodeRows*cw)
	d.top = make([]uint64, d.nodeRows*cw)
	d.defBits = make([]uint64, d.nodeRows*cw)
	d.scratchBot = make([]uint64, cw)
	d.scratchTop = make([]uint64, cw)
	for _, nd := range g.Nodes {
		row := d.defRow(nd.ID)
		for i := range nd.Instrs {
			if ins := &nd.Instrs[i]; ins.HasDst() {
				row[int(ins.Dst)/64] |= 1 << (int(ins.Dst) % 64)
			}
		}
	}
	return d
}

// AnalyzePacked runs constant propagation on the packed SoA kernel. The
// solution is pointwise equal to Analyze's, iteration counts included.
func AnalyzePacked(g *cfg.Graph, numVars int, conditional bool) *Result {
	d := &packedDomain{g: g, conditional: conditional, cells: kernel.NewKV(numVars)}
	s := kernel.NewSolver(g, d)
	s.Run()
	return &Result{G: g, Sol: s.Materialize(func(row int) dataflow.Fact { return d.env(row) })}
}

// AnalyzeSparse runs constant propagation on the sparse def-use-chain
// solver. Facts, reachability, and edge executability are pointwise
// equal to the other backends'; iteration counts are lower (gate with
// oracle.DifferentialFacts, not Differential).
func AnalyzeSparse(g *cfg.Graph, numVars int, conditional bool) *Result {
	d := newSparseDomain(g, numVars, conditional)
	s := kernel.NewSparseSolver(g, d)
	s.Run()
	return &Result{G: g, Sol: s.Materialize(func(row int) dataflow.Fact { return d.env(row) })}
}

// AnalyzeWith dispatches Analyze on the requested kernel backend.
func AnalyzeWith(g *cfg.Graph, numVars int, conditional bool, k dataflow.Kernel) *Result {
	switch k {
	case dataflow.KernelBoxed:
		return Analyze(g, numVars, conditional)
	case dataflow.KernelSparse:
		return AnalyzeSparse(g, numVars, conditional)
	}
	return AnalyzePacked(g, numVars, conditional)
}

// AnalyzeMasked dispatches constant propagation on the requested kernel
// backend with an infeasible-edge mask: Transfer withholds facts along
// masked edges, so their targets see fewer meets (or become unreached).
// A nil mask is exactly AnalyzeWith. All backends produce pointwise
// identical masked facts: the dense solvers skip withheld slots, and
// the sparse solver's pass-through only forwards along edges Transfer
// has already marked executable — which a masked edge never is.
func AnalyzeMasked(g *cfg.Graph, numVars int, conditional bool, k dataflow.Kernel, infeasible []bool) *Result {
	if infeasible == nil {
		return AnalyzeWith(g, numVars, conditional, k)
	}
	switch k {
	case dataflow.KernelBoxed:
		return AnalyzeBoxedMasked(g, numVars, conditional, infeasible)
	case dataflow.KernelSparse:
		d := newSparseDomain(g, numVars, conditional)
		d.infeasible = infeasible
		s := kernel.NewSparseSolver(g, d)
		s.Run()
		return &Result{G: g, Sol: s.Materialize(func(row int) dataflow.Fact { return d.env(row) })}
	}
	d := &packedDomain{g: g, conditional: conditional, infeasible: infeasible, cells: kernel.NewKV(numVars)}
	s := kernel.NewSolver(g, d)
	s.Run()
	return &Result{G: g, Sol: s.Materialize(func(row int) dataflow.Fact { return d.env(row) })}
}
