package constprop_test

import (
	"testing"

	. "pathflow/internal/constprop"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/oracle"
	"pathflow/internal/lang"
	"pathflow/internal/progen"
)

// TestPackedMatchesBoxed checks the packed SoA kernel against the boxed
// reference on generated programs: pointwise-equal facts, reachability,
// edge executability, and iteration counts, in both propagation modes.
func TestPackedMatchesBoxed(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		prog, err := lang.Compile(progen.Generate(progen.DefaultConfig(seed)))
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		for _, name := range prog.Order {
			fn := prog.Funcs[name]
			nv := fn.NumVars()
			for _, conditional := range []bool{true, false} {
				boxed := Analyze(fn.G, nv, conditional)
				packed := AnalyzePacked(fn.G, nv, conditional)
				lat := &Problem{NumVars: nv, Conditional: conditional}
				rep := oracle.Differential("constprop", name, lat, boxed.Sol, packed.Sol)
				if err := rep.Err(); err != nil {
					t.Errorf("seed %d func %s conditional=%t: %v", seed, name, conditional, err)
				}
			}
		}
	}
}

// TestAnalyzeWithDispatch pins the kernel selector: the zero value is
// the packed path, and both backends agree.
func TestAnalyzeWithDispatch(t *testing.T) {
	prog, err := lang.Compile(progen.Generate(progen.DefaultConfig(7)))
	if err != nil {
		t.Fatal(err)
	}
	name := prog.Order[0]
	fn := prog.Funcs[name]
	nv := fn.NumVars()
	packed := AnalyzeWith(fn.G, nv, true, dataflow.KernelPacked)
	boxed := AnalyzeWith(fn.G, nv, true, dataflow.KernelBoxed)
	lat := &Problem{NumVars: nv, Conditional: true}
	if err := oracle.Differential("constprop", name, lat, boxed.Sol, packed.Sol).Err(); err != nil {
		t.Error(err)
	}
}
