package constprop_test

import (
	"testing"

	"pathflow/internal/automaton"
	"pathflow/internal/cfg"
	. "pathflow/internal/constprop"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/paperex"
	"pathflow/internal/trace"
)

func TestValueMeet(t *testing.T) {
	top := Value{Kind: Top}
	bot := Value{Kind: Bottom}
	c3, c4 := ConstOf(3), ConstOf(4)
	cases := []struct {
		a, b, want Value
	}{
		{top, top, top},
		{top, c3, c3},
		{c3, top, c3},
		{top, bot, bot},
		{c3, c3, c3},
		{c3, c4, bot},
		{c3, bot, bot},
		{bot, bot, bot},
	}
	for _, tc := range cases {
		if got := tc.a.Meet(tc.b); got != tc.want {
			t.Errorf("%v ∧ %v = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMeetCommutativeAssociativeIdempotent(t *testing.T) {
	vals := []Value{{Kind: Top}, {Kind: Bottom}, ConstOf(0), ConstOf(1), ConstOf(-7)}
	for _, a := range vals {
		if a.Meet(a) != a {
			t.Errorf("%v not idempotent", a)
		}
		for _, b := range vals {
			if a.Meet(b) != b.Meet(a) {
				t.Errorf("meet not commutative on %v,%v", a, b)
			}
			for _, c := range vals {
				l := a.Meet(b).Meet(c)
				r := a.Meet(b.Meet(c))
				if l != r {
					t.Errorf("meet not associative on %v,%v,%v", a, b, c)
				}
			}
		}
	}
}

func analyzeSrc(t *testing.T, src string, conditional bool) (*cfg.Func, *Result) {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Main()
	return f, Analyze(f.G, f.NumVars(), conditional)
}

// varAt finds the named variable's lattice value at the entry of the exit
// node (i.e., at function end).
func varAt(t *testing.T, f *cfg.Func, r *Result, name string) Value {
	t.Helper()
	var v ir.Var = ir.NoVar
	for i, n := range f.VarNames {
		if n == name {
			v = ir.Var(i)
		}
	}
	if !v.Valid() {
		t.Fatalf("no variable %q", name)
	}
	return r.EnvAt(f.G.Exit)[v]
}

func TestStraightLineConstants(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	x = 3;
	y = x * 2 + 1;
	print(y);
}`, true)
	if got := varAt(t, f, r, "y"); got != ConstOf(7) {
		t.Errorf("y = %v, want 7", got)
	}
}

func TestMergeDestroysDifferingConstants(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	t = input();
	if (t > 0) { x = 1; } else { x = 2; }
	print(x);
}`, true)
	if got := varAt(t, f, r, "x"); got.Kind != Bottom {
		t.Errorf("x = %v, want ⊥", got)
	}
}

func TestMergePreservesAgreeingConstants(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	t = input();
	if (t > 0) { x = 5; y = 1; } else { x = 5; y = 2; }
	print(x + y);
}`, true)
	if got := varAt(t, f, r, "x"); got != ConstOf(5) {
		t.Errorf("x = %v, want 5", got)
	}
	if got := varAt(t, f, r, "y"); got.Kind != Bottom {
		t.Errorf("y = %v, want ⊥", got)
	}
}

func TestConditionalPrunesConstantBranch(t *testing.T) {
	src := `
func main() {
	c = 1;
	if (c > 0) { x = 10; } else { x = 20; }
	print(x);
}`
	f, r := analyzeSrc(t, src, true)
	// Wegman-Zadek: only the true leg executes, so x = 10.
	if got := varAt(t, f, r, "x"); got != ConstOf(10) {
		t.Errorf("conditional: x = %v, want 10", got)
	}
	// Plain iterative propagation merges both legs: x = ⊥.
	f2, r2 := analyzeSrc(t, src, false)
	if got := varAt(t, f2, r2, "x"); got.Kind != Bottom {
		t.Errorf("plain: x = %v, want ⊥", got)
	}
}

func TestUnreachableBranchNotVisited(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	c = 0;
	if (c != 0) { x = 1; } else { x = 2; }
	print(x);
}`, true)
	// Find the then-block (the one assigning 1) and confirm it is
	// unreached.
	for _, nd := range f.G.Nodes {
		for _, in := range nd.Instrs {
			if in.Op == ir.Const && in.K == 1 && r.Reached(nd.ID) {
				// The constant 1 appears in the condition computation
				// too; only flag blocks that are pure assignments.
				if len(nd.Instrs) == 2 { // const + copy from lowering
					t.Errorf("then-block %s reached despite false condition", nd.Name)
				}
			}
		}
	}
	if got := varAt(t, f, r, "x"); got != ConstOf(2) {
		t.Errorf("x = %v, want 2", got)
	}
}

func TestLoopInvariantStaysConstant(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	k = 7;
	i = 0;
	while (i < input()) {
		i = i + 1;
	}
	print(k + i);
}`, true)
	if got := varAt(t, f, r, "k"); got != ConstOf(7) {
		t.Errorf("k = %v, want 7", got)
	}
	if got := varAt(t, f, r, "i"); got.Kind != Bottom {
		t.Errorf("i = %v, want ⊥", got)
	}
}

func TestOpaqueSourcesAreBottom(t *testing.T) {
	f, r := analyzeSrc(t, `
func g() { return 3; }
func main() {
	a = input();
	b = arg(0);
	c = g();
	print(a + b + c);
}`, true)
	// Even though g always returns 3, calls are opaque (paper: the
	// analysis does not track the results of calls).
	for _, name := range []string{"a", "b", "c"} {
		if got := varAt(t, f, r, name); got.Kind != Bottom {
			t.Errorf("%s = %v, want ⊥", name, got)
		}
	}
}

func TestParamsAreBottom(t *testing.T) {
	p, err := lang.Compile(`
func f(a) {
	b = a + 1;
	return b;
}
func main() { print(f(1)); }`)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Funcs["f"]
	r := Analyze(f.G, f.NumVars(), true)
	env := r.EnvAt(f.G.Exit)
	if env[f.Params[0]].Kind != Bottom {
		t.Errorf("param = %v, want ⊥", env[f.Params[0]])
	}
}

// TestExampleHPGConstants is the paper's §4.1 headline: after tracing,
// "a + b is always 6 at H14, 5 at H12 and H15, and 4 at H13, i++ is 1 at
// H14 and H15, and n is always 1 at I17" — none of which hold anywhere in
// the original graph.
func TestExampleHPGConstants(t *testing.T) {
	f, _, edges := paperex.Build()
	ps := paperex.Paths(edges)
	a, err := automaton.New(f.G, paperex.Recording(edges), ps[:])
	if err != nil {
		t.Fatal(err)
	}
	h, err := trace.Build(f, a)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(h.G, f.NumVars(), true)

	byName := map[string]cfg.NodeID{}
	for _, nd := range h.G.Nodes {
		byName[nd.Name] = nd.ID
	}
	// instrValue finds the value of the instruction writing dst in node.
	instrValue := func(node string, dst ir.Var) Value {
		id, ok := byName[node]
		if !ok {
			t.Fatalf("no HPG node %s", node)
		}
		vals := r.InstrValues(id)
		for i, in := range h.G.Node(id).Instrs {
			if in.Dst == dst {
				return vals[i]
			}
		}
		t.Fatalf("node %s has no instruction writing v%d", node, dst)
		return Value{}
	}

	if got := instrValue("H14", paperex.VarX); got != ConstOf(6) {
		t.Errorf("x at H14 = %v, want 6", got)
	}
	if got := instrValue("H12", paperex.VarX); got != ConstOf(5) {
		t.Errorf("x at H12 = %v, want 5", got)
	}
	if got := instrValue("H15", paperex.VarX); got != ConstOf(5) {
		t.Errorf("x at H15 = %v, want 5", got)
	}
	if got := instrValue("H13", paperex.VarX); got != ConstOf(4) {
		t.Errorf("x at H13 = %v, want 4", got)
	}
	if got := instrValue("H14", paperex.VarI); got != ConstOf(1) {
		t.Errorf("i at H14 = %v, want 1", got)
	}
	if got := instrValue("H15", paperex.VarI); got != ConstOf(1) {
		t.Errorf("i at H15 = %v, want 1", got)
	}
	if got := instrValue("I17", paperex.VarN); got != ConstOf(1) {
		t.Errorf("n at I17 = %v, want 1", got)
	}
	// Cold duplicates stay unknown.
	if got := instrValue("Hε", paperex.VarX); got.Kind != Bottom {
		t.Errorf("x at Hε = %v, want ⊥", got)
	}
	if got := instrValue("Iε", paperex.VarN); got.Kind != Bottom {
		t.Errorf("n at Iε = %v, want ⊥", got)
	}

	// And in the original graph, x is nowhere constant (Figure 1: only
	// assignments of constants are constant instructions).
	ro := Analyze(f.G, f.NumVars(), true)
	_, nodes, _ := paperex.Build()
	valsH := ro.InstrValues(nodes.H)
	for i, in := range f.G.Node(nodes.H).Instrs {
		if in.Dst == paperex.VarX && valsH[i].IsConst() {
			t.Error("x constant at H in the original graph; should not be")
		}
	}
}

func TestLocalValues(t *testing.T) {
	f, _, _ := paperex.Build()
	_, nodes, _ := paperex.Build()
	vals := LocalValues(f.G, nodes.H, f.NumVars())
	// H: x=a+b (non-local), one=1 (local), i=i+one (non-local), tH=input.
	if vals[0].IsConst() {
		t.Error("x=a+b should not be locally constant")
	}
	if vals[1] != ConstOf(1) {
		t.Errorf("one = %v, want 1", vals[1])
	}
	if vals[2].IsConst() {
		t.Error("i=i+one should not be locally constant")
	}
	if vals[3].IsConst() {
		t.Error("input should not be locally constant")
	}
}

func TestEnvString(t *testing.T) {
	e := NewEnv(3, Bottom)
	e[1] = ConstOf(42)
	s := e.String([]string{"a", "b", "c"})
	if s != "{b=42}" {
		t.Errorf("String = %q, want {b=42}", s)
	}
}

func TestUnreachedEnvIsTop(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	c = 0;
	while (c != 0) { x = 1; }
	print(c);
}`, true)
	// The loop body is unreached; its env must be all-⊤ so that the
	// reduction algorithm's meets treat it as identity.
	for _, nd := range f.G.Nodes {
		if !r.Reached(nd.ID) && nd.ID != f.G.Exit {
			env := r.EnvAt(nd.ID)
			for i, v := range env {
				if v.Kind != Top {
					t.Fatalf("unreached node %s var %d = %v, want ⊤", nd.Name, i, v)
				}
			}
			return
		}
	}
	t.Skip("no unreached node found (lowering changed?)")
}
