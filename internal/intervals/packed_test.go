package intervals_test

import (
	"testing"

	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/oracle"
	. "pathflow/internal/intervals"
	"pathflow/internal/lang"
	"pathflow/internal/progen"
)

// TestPackedMatchesBoxed checks the packed SoA kernel against the boxed
// reference on generated programs: the widening/narrowing schedule must
// match exactly (iteration counts included), both with and without
// branch refinement.
func TestPackedMatchesBoxed(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		prog, err := lang.Compile(progen.Generate(progen.DefaultConfig(seed)))
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		for _, name := range prog.Order {
			fn := prog.Funcs[name]
			nv := fn.NumVars()
			for _, conditional := range []bool{true, false} {
				boxed := AnalyzeWith(fn.G, nv, conditional, dataflow.KernelBoxed)
				packed := AnalyzePacked(fn.G, nv, conditional)
				lat := &Problem{NumVars: nv, Conditional: conditional}
				rep := oracle.Differential("intervals", name, lat, boxed.Sol, packed.Sol)
				if err := rep.Err(); err != nil {
					t.Errorf("seed %d func %s conditional=%t: %v", seed, name, conditional, err)
				}
			}
		}
	}
}

// TestPackedMatchesBoxedTuned repeats the differential under Tuner
// overrides: both backends must honor the same widening threshold and
// narrowing pass count (including 0 = narrowing disabled).
func TestPackedMatchesBoxedTuned(t *testing.T) {
	tunings := []*dataflow.Tuning{
		{Threshold: 0, Passes: 0},
		{Threshold: 1, Passes: 5},
		{Threshold: 10, Passes: 1},
		{Threshold: -1, Passes: -1}, // explicit defaults
	}
	for seed := uint64(1); seed <= 10; seed++ {
		prog, err := lang.Compile(progen.Generate(progen.DefaultConfig(seed)))
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v", seed, err)
		}
		for _, name := range prog.Order {
			fn := prog.Funcs[name]
			nv := fn.NumVars()
			for _, tune := range tunings {
				boxed := AnalyzeTuned(fn.G, nv, true, tune, dataflow.KernelBoxed)
				packed := AnalyzeTuned(fn.G, nv, true, tune, dataflow.KernelPacked)
				lat := &Problem{NumVars: nv, Conditional: true}
				rep := oracle.Differential("intervals", name, lat, boxed.Sol, packed.Sol)
				if err := rep.Err(); err != nil {
					t.Errorf("seed %d func %s tuning=%+v: %v", seed, name, *tune, err)
				}
			}
		}
	}
}
