package intervals

import (
	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/ir"
)

// Env maps registers to intervals; a dataflow.Fact.
type Env []Interval

// NewEnv returns an environment with every register set to iv.
func NewEnv(numVars int, iv Interval) Env {
	e := make(Env, numVars)
	for i := range e {
		e[i] = iv
	}
	return e
}

// Clone copies the environment.
func (e Env) Clone() Env { return append(Env(nil), e...) }

// Meet hulls pointwise.
func (e Env) Meet(o Env) Env {
	out := make(Env, len(e))
	for i := range e {
		out[i] = e[i].Meet(o[i])
	}
	return out
}

// Widen extrapolates pointwise.
func (e Env) Widen(o Env) Env {
	out := make(Env, len(e))
	for i := range e {
		out[i] = e[i].Widen(o[i])
	}
	return out
}

// Equal compares pointwise.
func (e Env) Equal(o Env) bool {
	for i := range e {
		if e[i] != o[i] {
			return false
		}
	}
	return true
}

// EvalInstr computes the interval an instruction's destination takes.
func EvalInstr(in *ir.Instr, env Env) Interval {
	switch {
	case in.Op == ir.Const:
		return ConstI(in.K)
	case in.Op.Opaque() || in.Op == ir.Print || in.Op == ir.Nop:
		return Full()
	case in.Op.IsUnary():
		return EvalUn(in.Op, env[in.A])
	case in.Op.IsBinary():
		return EvalBin(in.Op, env[in.A], env[in.B])
	}
	return Full()
}

// TransferBlock symbolically executes node n, optionally reporting each
// instruction's interval.
func TransferBlock(g *cfg.Graph, n cfg.NodeID, in Env, vals bool) (Env, []Interval) {
	env := in.Clone()
	nd := g.Node(n)
	var out []Interval
	if vals {
		out = make([]Interval, len(nd.Instrs))
	}
	for i := range nd.Instrs {
		iv := EvalInstr(&nd.Instrs[i], env)
		if vals {
			out[i] = iv
		}
		if nd.Instrs[i].HasDst() {
			env[nd.Instrs[i].Dst] = iv
		}
	}
	return env, out
}

// Problem is the range-analysis data-flow problem.
type Problem struct {
	NumVars int
	// Conditional enables branch pruning and comparison refinement.
	Conditional bool
	// Tuning optionally overrides the widening threshold and narrowing
	// pass count (promoted dataflow.Tuner methods; nil keeps the
	// package defaults). Both solver backends honor the same override.
	*dataflow.Tuning
	// Infeasible, when non-nil, marks edges (indexed by cfg.EdgeID) a
	// prior feasibility analysis proved no execution can take; Transfer
	// withholds refined environments along them.
	Infeasible []bool
}

var (
	_ dataflow.Problem = (*Problem)(nil)
	_ dataflow.Widener = (*Problem)(nil)
	_ dataflow.Tuner   = (*Problem)(nil)
)

// Entry returns the all-⊥ (full-range) environment.
func (p *Problem) Entry() dataflow.Fact { return NewEnv(p.NumVars, Full()) }

// Meet hulls two facts.
func (p *Problem) Meet(a, b dataflow.Fact) dataflow.Fact { return a.(Env).Meet(b.(Env)) }

// Widen extrapolates two facts (dataflow.Widener).
func (p *Problem) Widen(old, new dataflow.Fact) dataflow.Fact {
	return old.(Env).Widen(new.(Env))
}

// Equal compares two facts.
func (p *Problem) Equal(a, b dataflow.Fact) bool { return a.(Env).Equal(b.(Env)) }

// Transfer executes the block, refines comparison operands on each branch
// leg, and prunes legs whose conditions are decided.
func (p *Problem) Transfer(g *cfg.Graph, n cfg.NodeID, in dataflow.Fact, out []dataflow.Fact) {
	env, _ := TransferBlock(g, n, in.(Env), false)
	nd := g.Node(n)
	switch nd.Kind {
	case cfg.TermJump, cfg.TermReturn:
		out[0] = env
	case cfg.TermBranch:
		if !p.Conditional {
			out[0], out[1] = env, env.Clone()
			return
		}
		c := env[nd.Cond]
		if c.IsEmpty() {
			return // no evidence yet
		}
		nonZero := c.Hi > 0 || c.Lo < 0
		if nonZero {
			taken := env.Clone()
			refineBranch(nd, p.NumVars, taken, true)
			out[0] = taken
		}
		if c.Contains(0) {
			fall := env.Clone()
			refineBranch(nd, p.NumVars, fall, false)
			out[1] = fall
		}
	case cfg.TermHalt:
	}
	if p.Infeasible != nil {
		for i, eid := range nd.Out {
			if i < len(out) && int(eid) < len(p.Infeasible) && p.Infeasible[eid] {
				out[i] = nil
			}
		}
	}
}

// refineBranch sharpens env knowing the branch condition evaluated to
// taken. It looks up the condition's defining comparison inside the block
// (through lowering copies, via block-local value numbering) and clips
// the operands' intervals on each leg.
func refineBranch(nd *cfg.Node, numVars int, env Env, taken bool) {
	tokens := make([]int32, numVars)
	for i := range tokens {
		tokens[i] = int32(i)
	}
	next := int32(numVars)
	// defOp/defA/defB track the defining comparison of the condition's
	// value token, if any.
	type def struct {
		op           ir.Op
		tokA, tokB   int32
		isComparison bool
	}
	defs := map[int32]def{}
	for i := range nd.Instrs {
		in := &nd.Instrs[i]
		if !in.HasDst() {
			continue
		}
		if in.Op == ir.Copy {
			tokens[in.Dst] = tokens[in.A]
			continue
		}
		tok := next
		next++
		switch in.Op {
		case ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge:
			defs[tok] = def{op: in.Op, tokA: tokens[in.A], tokB: tokens[in.B], isComparison: true}
		}
		tokens[in.Dst] = tok
	}
	condTok := tokens[nd.Cond]

	// The condition itself is 0 on the fall-through leg, non-zero on the
	// taken leg; clip every register holding its value.
	for v := range tokens {
		if tokens[v] != condTok {
			continue
		}
		if taken {
			iv := env[v]
			if iv.Contains(0) {
				// Only boundary zeros can be removed from an interval.
				if iv.Lo == 0 && iv.Hi > 0 {
					env[v] = env[v].Intersect(Range(1, PosInf))
				} else if iv.Hi == 0 && iv.Lo < 0 {
					env[v] = env[v].Intersect(Range(NegInf, -1))
				}
			}
		} else {
			env[v] = env[v].Intersect(ConstI(0))
		}
	}

	d, ok := defs[condTok]
	if !ok || !d.isComparison {
		return
	}
	op := d.op
	if !taken {
		op = negateCmp(op)
	}
	// Gather the registers still holding the operands' values.
	var as, bs []int
	for v := range tokens {
		if tokens[v] == d.tokA {
			as = append(as, v)
		}
		if tokens[v] == d.tokB {
			bs = append(bs, v)
		}
	}
	if len(as) == 0 && len(bs) == 0 {
		return
	}
	// Operand intervals (all regs in a group hold the same value).
	aIv, bIv := Full(), Full()
	if len(as) > 0 {
		aIv = env[as[0]]
	}
	if len(bs) > 0 {
		bIv = env[bs[0]]
	}
	newA, newB := refineCmp(op, aIv, bIv)
	for _, v := range as {
		env[v] = env[v].Intersect(newA)
	}
	for _, v := range bs {
		env[v] = env[v].Intersect(newB)
	}
}

func negateCmp(op ir.Op) ir.Op {
	switch op {
	case ir.Eq:
		return ir.Ne
	case ir.Ne:
		return ir.Eq
	case ir.Lt:
		return ir.Ge
	case ir.Le:
		return ir.Gt
	case ir.Gt:
		return ir.Le
	case ir.Ge:
		return ir.Lt
	}
	return op
}

// refineCmp returns the clipping intervals for a and b knowing `a op b`
// holds.
func refineCmp(op ir.Op, a, b Interval) (Interval, Interval) {
	full := Full()
	switch op {
	case ir.Lt: // a < b: a ≤ b.Hi-1, b ≥ a.Lo+1
		return capHi(a, addSat(b.Hi, -1)), capLo(b, addSat(a.Lo, 1))
	case ir.Le:
		return capHi(a, b.Hi), capLo(b, a.Lo)
	case ir.Gt:
		return capLo(a, addSat(b.Lo, 1)), capHi(b, addSat(a.Hi, -1))
	case ir.Ge:
		return capLo(a, b.Lo), capHi(b, a.Hi)
	case ir.Eq:
		m := a.Intersect(b)
		if m.IsEmpty() {
			// Contradiction: this leg is actually dead; keep ⊥ clips
			// minimal by leaving operands untouched.
			return full, full
		}
		return m, m
	case ir.Ne:
		// Only boundary exclusions are expressible.
		if k, ok := b.IsConst(); ok {
			a = excludeBoundary(a, k)
		}
		if k, ok := a.IsConst(); ok {
			b = excludeBoundary(b, k)
		}
		return a, b
	}
	return full, full
}

func capHi(a Interval, hi int64) Interval {
	if hi == PosInf {
		return a
	}
	return a.Intersect(Range(NegInf, hi))
}

func capLo(a Interval, lo int64) Interval {
	if lo == NegInf {
		return a
	}
	return a.Intersect(Range(lo, PosInf))
}

func excludeBoundary(a Interval, k int64) Interval {
	if a.IsEmpty() {
		return a
	}
	if a.Lo == k && a.Hi > k {
		return Range(addSat(k, 1), a.Hi)
	}
	if a.Hi == k && a.Lo < k {
		return Range(a.Lo, addSat(k, -1))
	}
	return a
}

// Result is a solved range analysis.
type Result struct {
	G   *cfg.Graph
	Sol *dataflow.Solution
	n   int
}

// Analyze runs range analysis over g on the boxed reference solver.
func Analyze(g *cfg.Graph, numVars int, conditional bool) *Result {
	p := &Problem{NumVars: numVars, Conditional: conditional}
	return &Result{G: g, Sol: dataflow.Solve(g, p), n: numVars}
}

// AnalyzeTuned runs range analysis with explicit widening/narrowing
// overrides on the requested kernel backend.
func AnalyzeTuned(g *cfg.Graph, numVars int, conditional bool, tune *dataflow.Tuning, k dataflow.Kernel) *Result {
	p := &Problem{NumVars: numVars, Conditional: conditional, Tuning: tune}
	switch k {
	case dataflow.KernelBoxed:
		return &Result{G: g, Sol: dataflow.Solve(g, p), n: numVars}
	case dataflow.KernelSparse:
		return analyzeSparse(g, p)
	}
	return analyzePacked(g, p)
}

// AnalyzeWith dispatches Analyze on the requested kernel backend.
func AnalyzeWith(g *cfg.Graph, numVars int, conditional bool, k dataflow.Kernel) *Result {
	return AnalyzeTuned(g, numVars, conditional, nil, k)
}

// EnvAt returns the environment at n's entry (all-⊤ when unreached).
func (r *Result) EnvAt(n cfg.NodeID) Env {
	if !r.Sol.Reached[n] {
		return NewEnv(r.n, EmptyI())
	}
	return r.Sol.In[n].(Env)
}

// Reached reports analysis reachability.
func (r *Result) Reached(n cfg.NodeID) bool { return r.Sol.Reached[n] }

// InstrIntervals returns each instruction's result interval at node n.
func (r *Result) InstrIntervals(n cfg.NodeID) []Interval {
	_, vals := TransferBlock(r.G, n, r.EnvAt(n), true)
	return vals
}

// BoundedCount returns how many pure destination-producing instructions
// have a finitely bounded result interval, statically and (when freq is
// non-nil) dynamically — the metric for qualified-vs-baseline range
// comparisons.
func BoundedCount(g *cfg.Graph, r *Result, freq []int64) (static int, dyn int64) {
	for _, nd := range g.Nodes {
		if !r.Reached(nd.ID) || len(nd.Instrs) == 0 {
			continue
		}
		vals := r.InstrIntervals(nd.ID)
		for i := range nd.Instrs {
			in := &nd.Instrs[i]
			if !in.Op.IsPure() || !in.HasDst() {
				continue
			}
			if vals[i].Bounded() {
				static++
				if freq != nil {
					dyn += freq[nd.ID]
				}
			}
		}
	}
	return static, dyn
}
