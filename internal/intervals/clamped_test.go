package intervals_test

import (
	"testing"

	. "pathflow/internal/intervals"
	"pathflow/internal/lang"
)

func TestClampRoundsOutward(t *testing.T) {
	thr := []int64{NegInf, -1, 0, 1, 4, 5, 6, PosInf}
	cases := []struct {
		in, want Interval
	}{
		{Range(2, 3), Range(1, 4)}, // both bounds off-threshold
		{ConstI(5), ConstI(5)},     // already a threshold: unchanged
		{Range(0, 100), Range(0, PosInf)},
		{Range(-50, -2), Range(NegInf, -1)},
		{Full(), Full()},
		{EmptyI(), EmptyI()},
	}
	for _, tc := range cases {
		if got := Clamp(tc.in, thr); got != tc.want {
			t.Errorf("Clamp(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestThresholdsCoverLiterals(t *testing.T) {
	p, err := lang.Compile(`
func main() {
	x = 7;
	print(x);
}`)
	if err != nil {
		t.Fatal(err)
	}
	thr := Thresholds(p.Main().G)
	want := map[int64]bool{NegInf: false, PosInf: false, 0: false, 6: false, 7: false, 8: false}
	for _, k := range thr {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("Thresholds missing %d", k)
		}
	}
	for i := 1; i < len(thr); i++ {
		if thr[i-1] >= thr[i] {
			t.Fatalf("thresholds not strictly sorted at %d: %v", i, thr)
		}
	}
}

// TestClampedLoopTerminatesAndBounds: the clamped analysis converges on
// a counting loop with no widening at all, and the loop literal's
// thresholds let it keep the same tight body range the widened analysis
// recovers via narrowing.
func TestClampedLoopTerminatesAndBounds(t *testing.T) {
	p, err := lang.Compile(`
func main() {
	i = 0;
	inside = 0;
	while (i < 10) {
		inside = i;
		i = i + 1;
	}
	print(i + inside);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Main()
	thr := Thresholds(f.G)
	r := AnalyzeClamped(f.G, f.NumVars(), thr, true)
	iv := varIdx(t, f, "i")
	exitEnv := r.EnvAt(f.G.Exit)
	if exitEnv[iv].Lo < 10 {
		t.Errorf("i at exit = %v, want Lo >= 10", exitEnv[iv])
	}
}

// TestClampedAtMostAsPreciseAsThresholds: every clamped fact's bounds
// are members of the threshold set (the finite-lattice property the
// oracle's termination and monotonicity arguments rest on).
func TestClampedFactsStayOnThresholds(t *testing.T) {
	p, err := lang.Compile(`
func main() {
	n = arg(0);
	i = 0;
	s = 3;
	while (i < n) {
		s = s * 2 + 1;
		i = i + 1;
	}
	print(s);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Main()
	thr := Thresholds(f.G)
	onThr := func(k int64) bool {
		for _, v := range thr {
			if v == k {
				return true
			}
		}
		return false
	}
	r := AnalyzeClamped(f.G, f.NumVars(), thr, true)
	for _, nd := range f.G.Nodes {
		if !r.Reached(nd.ID) {
			continue
		}
		for v, iv := range r.EnvAt(nd.ID) {
			if iv.IsEmpty() {
				continue
			}
			if !onThr(iv.Lo) || !onThr(iv.Hi) {
				t.Fatalf("node %d var %d: fact %v off the threshold set", nd.ID, v, iv)
			}
		}
	}
}
