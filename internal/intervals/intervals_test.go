package intervals_test

import (
	"testing"
	"testing/quick"

	"pathflow/internal/cfg"
	"pathflow/internal/interp"
	. "pathflow/internal/intervals"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
)

func TestIntervalBasics(t *testing.T) {
	if !EmptyI().IsEmpty() || Full().IsEmpty() {
		t.Fatal("empty/full broken")
	}
	if k, ok := ConstI(7).IsConst(); !ok || k != 7 {
		t.Fatal("ConstI broken")
	}
	if !Range(1, 5).Contains(3) || Range(1, 5).Contains(0) {
		t.Fatal("Contains broken")
	}
	if Full().Bounded() || !Range(-2, 9).Bounded() {
		t.Fatal("Bounded broken")
	}
	if Range(1, 5).Width() != 5 {
		t.Fatalf("Width = %d", Range(1, 5).Width())
	}
	if ConstI(3).String() != "[3,3]" || Full().String() != "[-∞,+∞]" || EmptyI().String() != "⊤" {
		t.Fatal("String broken")
	}
}

func TestMeetAndIntersect(t *testing.T) {
	a, b := Range(0, 5), Range(3, 9)
	if m := a.Meet(b); m != Range(0, 9) {
		t.Errorf("Meet = %v", m)
	}
	if x := a.Intersect(b); x != Range(3, 5) {
		t.Errorf("Intersect = %v", x)
	}
	if x := Range(0, 2).Intersect(Range(5, 9)); !x.IsEmpty() {
		t.Errorf("disjoint Intersect = %v", x)
	}
	if m := EmptyI().Meet(a); m != a {
		t.Errorf("⊤ not identity: %v", m)
	}
}

func TestWidenStabilizes(t *testing.T) {
	cur := ConstI(0)
	for i := int64(1); i <= 100; i++ {
		next := cur.Widen(cur.Meet(ConstI(i)))
		if next == cur && i > 1 {
			// stabilized
			if cur.Hi != PosInf {
				t.Fatalf("stabilized at %v without widening", cur)
			}
			return
		}
		cur = next
	}
	t.Fatalf("widening did not stabilize: %v", cur)
}

// TestEvalBinSound samples concrete values and checks interval soundness
// with testing/quick.
func TestEvalBinSound(t *testing.T) {
	ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod, ir.Eq, ir.Ne,
		ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr}
	f := func(a1, a2, b1, b2 int32, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		alo, ahi := int64(a1), int64(a2)
		if alo > ahi {
			alo, ahi = ahi, alo
		}
		blo, bhi := int64(b1), int64(b2)
		if blo > bhi {
			blo, bhi = bhi, blo
		}
		ia, ib := Range(alo, ahi), Range(blo, bhi)
		abs := EvalBin(op, ia, ib)
		// Sample endpoints and midpoints.
		for _, x := range []int64{alo, ahi, (alo + ahi) / 2} {
			for _, y := range []int64{blo, bhi, (blo + bhi) / 2} {
				if !abs.Contains(ir.EvalBin(op, x, y)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestEvalUnSound(t *testing.T) {
	for _, op := range []ir.Op{ir.Copy, ir.Neg, ir.Not} {
		iv := Range(-3, 8)
		abs := EvalUn(op, iv)
		for v := int64(-3); v <= 8; v++ {
			if !abs.Contains(ir.EvalUn(op, v)) {
				t.Errorf("%v(%d) outside %v", op, v, abs)
			}
		}
	}
}

func TestDivisionCases(t *testing.T) {
	cases := []struct {
		a, b Interval
		want func(Interval) bool
	}{
		{Range(10, 20), ConstI(2), func(r Interval) bool { return r == Range(5, 10) }},
		{Range(10, 20), ConstI(0), func(r Interval) bool { return r == ConstI(0) }}, // defined x/0 = 0
		{Range(10, 20), Range(-2, 2), func(r Interval) bool {
			return r.Contains(0) && r.Contains(-10) && r.Contains(10) && r.Contains(-5) && r.Contains(5)
		}},
		{ConstI(7), Range(1, PosInf), func(r Interval) bool { return r.Contains(0) && r.Contains(7) }},
	}
	for _, tc := range cases {
		got := tc.a.Div(tc.b)
		if !tc.want(got) {
			t.Errorf("%v / %v = %v", tc.a, tc.b, got)
		}
	}
}

func TestModCases(t *testing.T) {
	if got := Range(0, 100).Mod(ConstI(8)); got != Range(0, 7) {
		t.Errorf("[0,100] %% 8 = %v", got)
	}
	if got := ConstI(5).Mod(ConstI(8)); !got.Contains(5) {
		t.Errorf("5 %% 8 = %v must contain 5", got)
	}
	if got := Range(-10, -1).Mod(ConstI(4)); !got.Contains(-3) || got.Contains(4) || got.Hi != 0 {
		t.Errorf("[-10,-1] %% 4 = %v", got)
	}
}

func analyzeSrc(t *testing.T, src string) (*cfg.Func, *Result) {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Main()
	return f, Analyze(f.G, f.NumVars(), true)
}

func varIdx(t *testing.T, f *cfg.Func, name string) ir.Var {
	t.Helper()
	for i, n := range f.VarNames {
		if n == name {
			return ir.Var(i)
		}
	}
	t.Fatalf("no var %s", name)
	return ir.NoVar
}

// TestLoopBoundsViaRefinement: the canonical payoff — inside
// `while (i < 10)` the analysis knows i ∈ [0,9] (via widening and
// comparison refinement), and after the loop i ≥ 10.
func TestLoopBoundsViaRefinement(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	i = 0;
	inside = 0;
	while (i < 10) {
		inside = i;
		i = i + 1;
	}
	print(i + inside);
}`)
	iv := varIdx(t, f, "i")
	// At exit, i ≥ 10.
	exitEnv := r.EnvAt(f.G.Exit)
	if exitEnv[iv].Lo < 10 {
		t.Errorf("i at exit = %v, want Lo >= 10", exitEnv[iv])
	}
	// Find the loop body (the block assigning `inside`) and check i's
	// range there.
	for _, nd := range f.G.Nodes {
		for idx := range nd.Instrs {
			in := &nd.Instrs[idx]
			if in.Op == ir.Copy && in.Dst == varIdx(t, f, "inside") {
				env := r.EnvAt(nd.ID)
				if env[iv].Lo != 0 || env[iv].Hi != 9 {
					t.Errorf("i in loop body = %v, want [0,9]", env[iv])
				}
			}
		}
	}
}

func TestModBoundsInLoop(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	i = 0;
	h = 0;
	while (i < 1000) {
		h = (h * 31 + i) % 127;
		i = i + 1;
	}
	print(h);
}`)
	h := varIdx(t, f, "h")
	env := r.EnvAt(f.G.Exit)
	if env[h].Lo < 0 || env[h].Hi > 126 {
		t.Errorf("h at exit = %v, want within [0,126]", env[h])
	}
}

func TestBranchEqualityRefinement(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	x = input() % 100;
	y = 0;
	if (x == 42) {
		y = x;    // here x is exactly 42
	}
	print(y + x);
}`)
	y := varIdx(t, f, "y")
	env := r.EnvAt(f.G.Exit)
	// y is 0 or 42.
	if !env[y].Contains(0) || !env[y].Contains(42) || env[y].Lo < 0 || env[y].Hi > 42 {
		t.Errorf("y at exit = %v, want within [0,42] containing both", env[y])
	}
}

func TestConstantBranchPruned(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	c = 5;
	if (c < 3) { x = 1; } else { x = 2; }
	print(x);
}`)
	x := varIdx(t, f, "x")
	if got := r.EnvAt(f.G.Exit)[x]; got != ConstI(2) {
		t.Errorf("x = %v, want [2,2]", got)
	}
}

// TestIntervalsSoundOnExecution checks every range claim against live
// registers.
func TestIntervalsSoundOnExecution(t *testing.T) {
	src := `
func main() {
	i = 0;
	acc = 0;
	while (i < 200) {
		v = input() % 50;
		if (v > 25) { acc = acc + v; } else { acc = acc - 1; }
		if (acc > 10000) { acc = acc % 997; }
		i = i + 1;
	}
	print(acc);
}`
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Main()
	sol := Analyze(fn.G, fn.NumVars(), true)
	vals := make([]ir.Value, 512)
	x := uint64(99)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = ir.Value(x & 0x7fffffff)
	}
	var bad string
	_, err = interp.Run(prog, interp.Options{
		Input: &interp.SliceInput{Values: vals},
		OnBlockEnv: func(f *cfg.Func, n cfg.NodeID, regs []ir.Value) {
			if bad != "" {
				return
			}
			env := sol.EnvAt(n)
			for v := range env {
				if !env[v].IsEmpty() && !env[v].Contains(regs[v]) {
					bad = f.VarName(ir.Var(v)) + "=" + env[v].String()
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad != "" {
		t.Fatalf("unsound interval claim: %s", bad)
	}
}

func TestBoundedCount(t *testing.T) {
	f, r := analyzeSrc(t, `
func main() {
	a = input() % 16;  // [0,15]
	b = input();       // unbounded
	c = a * 2;         // [0,30]
	print(c + b);
}`)
	static, _ := BoundedCount(f.G, r, nil)
	if static < 3 {
		t.Errorf("bounded static = %d, want >= 3", static)
	}
}
