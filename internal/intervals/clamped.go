package intervals

import (
	"sort"

	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/ir"
)

// This file implements the widening-free variant of range analysis used
// by the precision differential oracle.
//
// The production analysis (Problem) converges on loops by widening, and
// widening is not monotone in the graph: a hot path graph can widen at
// different loop heads than the original CFG, so its solution is not
// guaranteed pointwise at least as precise — exactly the property the
// oracle certifies. The fix is classical: restrict interval bounds to a
// finite *threshold set* derived from the program text. Over that
// lattice the analysis is a plain monotone framework of finite height,
// the worklist solver computes its exact greatest fixpoint with no
// widening at all, and the refinement guarantee holds by the same
// argument as for the other clients (assigning each hot-path vertex its
// original vertex's solution is a post-fixpoint of the HPG equations, so
// the HPG's greatest fixpoint lies above it).
//
// Rounding bounds outward to thresholds loses precision relative to the
// widened analysis only transiently; in exchange the result is
// comparable across graph tiers, which the widened result is not.

// Thresholds returns the canonical threshold set for a graph: ±∞, 0, ±1,
// and k−1, k, k+1 for every integer literal k in the program text. Hot
// path graphs copy the original instructions verbatim, so deriving the
// set from any tier of the same function yields the same thresholds —
// but callers comparing tiers should derive it once from the original
// graph and share it, which also shares the work.
func Thresholds(g *cfg.Graph) []int64 {
	seen := map[int64]bool{NegInf: true, PosInf: true, -1: true, 0: true, 1: true}
	add := func(k int64) {
		seen[addSat(k, -1)] = true
		seen[k] = true
		seen[addSat(k, 1)] = true
	}
	for _, nd := range g.Nodes {
		for i := range nd.Instrs {
			if nd.Instrs[i].Op == ir.Const {
				add(nd.Instrs[i].K)
			}
		}
	}
	out := make([]int64, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clamp rounds a's bounds outward to the nearest thresholds in t (which
// must be sorted and contain NegInf and PosInf). Clamping is monotone
// with respect to interval inclusion, so composing it with the monotone
// transfer keeps the framework monotone.
func Clamp(a Interval, t []int64) Interval {
	if a.IsEmpty() {
		return a
	}
	// Largest threshold ≤ Lo.
	i := sort.Search(len(t), func(i int) bool { return t[i] > a.Lo }) - 1
	// Smallest threshold ≥ Hi.
	j := sort.Search(len(t), func(i int) bool { return t[i] >= a.Hi })
	return Interval{Lo: t[i], Hi: t[j], present: true}
}

// ClampedProblem is range analysis over the finite threshold lattice: it
// delegates the transfer to the production Problem and rounds every
// delivered fact's bounds outward to T. It deliberately does NOT
// implement dataflow.Widener — the finite lattice makes widening
// unnecessary, and omitting it is what restores the oracle's guarantee.
type ClampedProblem struct {
	NumVars int
	// Conditional enables branch pruning and comparison refinement,
	// exactly as on Problem.
	Conditional bool
	// T is the sorted threshold set (see Thresholds); it must contain
	// NegInf and PosInf.
	T []int64
	// Infeasible, when non-nil, marks edges a prior feasibility analysis
	// proved no execution can take; the delegated Transfer withholds
	// facts along them (see Problem.Infeasible).
	Infeasible []bool
}

var _ dataflow.Problem = (*ClampedProblem)(nil)

func (p *ClampedProblem) inner() *Problem {
	return &Problem{NumVars: p.NumVars, Conditional: p.Conditional, Infeasible: p.Infeasible}
}

// Entry returns the all-⊥ (full-range) environment.
func (p *ClampedProblem) Entry() dataflow.Fact { return NewEnv(p.NumVars, Full()) }

// Meet hulls two facts (threshold bounds are closed under hull).
func (p *ClampedProblem) Meet(a, b dataflow.Fact) dataflow.Fact { return a.(Env).Meet(b.(Env)) }

// Equal compares two facts.
func (p *ClampedProblem) Equal(a, b dataflow.Fact) bool { return a.(Env).Equal(b.(Env)) }

// Transfer runs the production transfer, then clamps each out-fact.
func (p *ClampedProblem) Transfer(g *cfg.Graph, n cfg.NodeID, in dataflow.Fact, out []dataflow.Fact) {
	p.inner().Transfer(g, n, in, out)
	for s, f := range out {
		if f == nil {
			continue
		}
		env := f.(Env)
		for v := range env {
			env[v] = Clamp(env[v], p.T)
		}
		out[s] = env
	}
}

// AnalyzeClamped runs the widening-free threshold-lattice range analysis
// over g. Callers comparing solutions across graph tiers must pass the
// same threshold set to every tier.
func AnalyzeClamped(g *cfg.Graph, numVars int, thresholds []int64, conditional bool) *Result {
	p := &ClampedProblem{NumVars: numVars, Conditional: conditional, T: thresholds}
	return &Result{G: g, Sol: dataflow.Solve(g, p), n: numVars}
}

// AnalyzeClampedMasked is AnalyzeClamped with an infeasible-edge mask
// (nil behaves like AnalyzeClamped).
func AnalyzeClampedMasked(g *cfg.Graph, numVars int, thresholds []int64, conditional bool, infeasible []bool) *Result {
	p := &ClampedProblem{NumVars: numVars, Conditional: conditional, T: thresholds, Infeasible: infeasible}
	return &Result{G: g, Sol: dataflow.Solve(g, p), n: numVars}
}
