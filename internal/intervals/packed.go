package intervals

import (
	mbits "math/bits"

	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/dataflow/kernel"
	"pathflow/internal/ir"
)

// packedDomain is the SoA kernel for range analysis: environments live
// as rows of a (lo []int64, hi []int64) arena. The empty interval is
// encoded canonically as lo > hi (kernel.Span's convention), so raw
// cell comparison matches Env.Equal. Branch refinement reuses
// preallocated token/def/operand buffers instead of the boxed path's
// per-call map and slices — the only state refineBranch ever needed
// was block-local and bounded by the function's shape.
type packedDomain struct {
	g                 *cfg.Graph
	nv                int
	conditional       bool
	infeasible        []bool // optional per-EdgeID feasibility mask; masked slots stay -1
	spans             *kernel.Span
	threshold, passes int

	// refine scratch, sized once per graph
	tokens []int32
	defs   []pdef  // defs[tok - nv], one per non-Copy dst instr of the block
	as, bs []int32 // registers holding the comparison operands
}

// pdef tracks the defining comparison of a value token, if any (the
// boxed path's block-local value-numbering map, flattened).
type pdef struct {
	op           ir.Op
	tokA, tokB   int32
	isComparison bool
}

func newPackedDomain(g *cfg.Graph, p *Problem) *packedDomain {
	d := &packedDomain{
		g:           g,
		nv:          p.NumVars,
		conditional: p.Conditional,
		infeasible:  p.Infeasible,
		spans:       kernel.NewSpan(p.NumVars),
		tokens:      make([]int32, p.NumVars),
		as:          make([]int32, 0, p.NumVars),
		bs:          make([]int32, 0, p.NumVars),
	}
	d.threshold, d.passes = dataflow.TuningOf(p)
	maxInstrs := 0
	for _, nd := range g.Nodes {
		if len(nd.Instrs) > maxInstrs {
			maxInstrs = len(nd.Instrs)
		}
	}
	d.defs = make([]pdef, 0, maxInstrs)
	return d
}

func (d *packedDomain) Direction() dataflow.Direction { return dataflow.Forward }
func (d *packedDomain) Grow(rows int)                 { d.spans.Grow(rows) }
func (d *packedDomain) Copy(dst, src int)             { d.spans.Copy(dst, src) }
func (d *packedDomain) Equal(a, b int) bool           { return d.spans.Equal(a, b) }
func (d *packedDomain) Tune() (int, int)              { return d.threshold, d.passes }

// Boundary writes the all-⊥ (full-range) environment.
func (d *packedDomain) Boundary(dst int) {
	lo, hi := d.spans.Row(dst)
	for i := range lo {
		lo[i], hi[i] = NegInf, PosInf
	}
}

// cell decodes one interval; put encodes one (empty ⇒ lo > hi).
func cell(lo, hi []int64, i int) Interval {
	if lo[i] > hi[i] {
		return Interval{}
	}
	return Interval{Lo: lo[i], Hi: hi[i], present: true}
}

func put(lo, hi []int64, i int, v Interval) {
	if !v.present {
		lo[i], hi[i] = PosInf, NegInf
		return
	}
	lo[i], hi[i] = v.Lo, v.Hi
}

// Meet hulls src into dst pointwise.
func (d *packedDomain) Meet(dst, src int) bool {
	dl, dh := d.spans.Row(dst)
	sl, sh := d.spans.Row(src)
	changed := false
	for i := range dl {
		m := cell(dl, dh, i).Meet(cell(sl, sh, i))
		nl, nh := m.Lo, m.Hi
		if !m.present {
			nl, nh = PosInf, NegInf
		}
		if nl != dl[i] || nh != dh[i] {
			dl[i], dh[i] = nl, nh
			changed = true
		}
	}
	return changed
}

// WidenInto extrapolates: merged = ∇(old, merged), pointwise.
func (d *packedDomain) WidenInto(old, merged int) {
	ol, oh := d.spans.Row(old)
	ml, mh := d.spans.Row(merged)
	for i := range ml {
		put(ml, mh, i, cell(ol, oh, i).Widen(cell(ml, mh, i)))
	}
}

// evalSpan is EvalInstr over SoA cells.
func evalSpan(in *ir.Instr, lo, hi []int64) Interval {
	switch {
	case in.Op == ir.Const:
		return ConstI(in.K)
	case in.Op.Opaque() || in.Op == ir.Print || in.Op == ir.Nop:
		return Full()
	case in.Op.IsUnary():
		return EvalUn(in.Op, cell(lo, hi, int(in.A)))
	case in.Op.IsBinary():
		return EvalBin(in.Op, cell(lo, hi, int(in.A)), cell(lo, hi, int(in.B)))
	}
	return Full()
}

// Transfer executes the block in scratch row 0, then refines each branch
// leg into its own scratch row (1 = taken, 2 = fall-through), pruning
// legs whose conditions are decided — the boxed Transfer without the
// Env clones.
func (d *packedDomain) Transfer(n cfg.NodeID, in, scratch int, slots []int8) {
	d.spans.Copy(scratch, in)
	lo, hi := d.spans.Row(scratch)
	nd := d.g.Node(n)
	for i := range nd.Instrs {
		ins := &nd.Instrs[i]
		iv := evalSpan(ins, lo, hi)
		if ins.HasDst() {
			put(lo, hi, int(ins.Dst), iv)
		}
	}
	switch nd.Kind {
	case cfg.TermJump, cfg.TermReturn:
		slots[0] = 0
	case cfg.TermBranch:
		if !d.conditional {
			slots[0], slots[1] = 0, 0
			return
		}
		c := cell(lo, hi, int(nd.Cond))
		if c.IsEmpty() {
			return // no evidence yet
		}
		if c.Hi > 0 || c.Lo < 0 {
			d.spans.Copy(scratch+1, scratch)
			tl, th := d.spans.Row(scratch + 1)
			d.refine(nd, tl, th, true)
			slots[0] = 1
		}
		if c.Contains(0) {
			d.spans.Copy(scratch+2, scratch)
			fl, fh := d.spans.Row(scratch + 2)
			d.refine(nd, fl, fh, false)
			slots[1] = 2
		}
	case cfg.TermHalt:
	}
	if d.infeasible != nil {
		for i, eid := range nd.Out {
			if i < len(slots) && int(eid) < len(d.infeasible) && d.infeasible[eid] {
				slots[i] = -1
			}
		}
	}
}

// refine is refineBranch over SoA cells with reused scratch buffers.
func (d *packedDomain) refine(nd *cfg.Node, lo, hi []int64, taken bool) {
	tokens := d.tokens
	for i := range tokens {
		tokens[i] = int32(i)
	}
	next := int32(d.nv)
	defs := d.defs[:0]
	for i := range nd.Instrs {
		in := &nd.Instrs[i]
		if !in.HasDst() {
			continue
		}
		if in.Op == ir.Copy {
			tokens[in.Dst] = tokens[in.A]
			continue
		}
		tok := next
		next++
		var pd pdef
		switch in.Op {
		case ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge:
			pd = pdef{op: in.Op, tokA: tokens[in.A], tokB: tokens[in.B], isComparison: true}
		}
		defs = append(defs, pd)
		tokens[in.Dst] = tok
	}
	d.defs = defs
	condTok := tokens[nd.Cond]

	// The condition itself is 0 on the fall-through leg, non-zero on the
	// taken leg; clip every register holding its value.
	for v := range tokens {
		if tokens[v] != condTok {
			continue
		}
		if taken {
			iv := cell(lo, hi, v)
			if iv.Contains(0) {
				// Only boundary zeros can be removed from an interval.
				if iv.Lo == 0 && iv.Hi > 0 {
					put(lo, hi, v, iv.Intersect(Range(1, PosInf)))
				} else if iv.Hi == 0 && iv.Lo < 0 {
					put(lo, hi, v, iv.Intersect(Range(NegInf, -1)))
				}
			}
		} else {
			put(lo, hi, v, cell(lo, hi, v).Intersect(ConstI(0)))
		}
	}

	if condTok < int32(d.nv) {
		return // the condition's value has no defining instruction here
	}
	pd := defs[condTok-int32(d.nv)]
	if !pd.isComparison {
		return
	}
	op := pd.op
	if !taken {
		op = negateCmp(op)
	}
	// Gather the registers still holding the operands' values.
	as, bs := d.as[:0], d.bs[:0]
	for v := range tokens {
		if tokens[v] == pd.tokA {
			as = append(as, int32(v))
		}
		if tokens[v] == pd.tokB {
			bs = append(bs, int32(v))
		}
	}
	d.as, d.bs = as, bs
	if len(as) == 0 && len(bs) == 0 {
		return
	}
	// Operand intervals (all regs in a group hold the same value).
	aIv, bIv := Full(), Full()
	if len(as) > 0 {
		aIv = cell(lo, hi, int(as[0]))
	}
	if len(bs) > 0 {
		bIv = cell(lo, hi, int(bs[0]))
	}
	newA, newB := refineCmp(op, aIv, bIv)
	for _, v := range as {
		put(lo, hi, int(v), cell(lo, hi, int(v)).Intersect(newA))
	}
	for _, v := range bs {
		put(lo, hi, int(v), cell(lo, hi, int(v)).Intersect(newB))
	}
}

// Cells implements kernel.SparseDomain: one cell per register.
func (d *packedDomain) Cells() int { return d.nv }

// Chain implements kernel.SparseDomain. Beyond instruction
// destinations, a branch block's refinement clips the registers holding
// the condition's value and the comparison operands' values — chosen by
// a value-numbering pass over the block that depends only on its
// instructions, so it is replayed here statically and its targets land
// in the defs mask. Intervals widen, so the sparse solver never
// pass-throughs this domain (the chains sharpen deliveries only), but
// the masks must still over-approximate every cell a transfer can
// touch.
func (d *packedDomain) Chain(n cfg.NodeID, defs, uses []uint64) {
	set := func(m []uint64, v int) {
		m[v/64] |= 1 << (uint32(v) % 64)
	}
	nd := d.g.Node(n)
	var buf []ir.Var
	for i := range nd.Instrs {
		ins := &nd.Instrs[i]
		if ins.HasDst() {
			set(defs, int(ins.Dst))
		}
		buf = ins.Uses(buf[:0])
		for _, u := range buf {
			if u.Valid() {
				set(uses, int(u))
			}
		}
	}
	if nd.Kind != cfg.TermBranch || !d.conditional || !nd.Cond.Valid() {
		return
	}
	set(uses, int(nd.Cond))
	// Replay refine's token pass: tokens depend only on the block's
	// instructions, never on interval values.
	tokens := d.tokens
	for i := range tokens {
		tokens[i] = int32(i)
	}
	next := int32(d.nv)
	pdefs := d.defs[:0]
	for i := range nd.Instrs {
		in := &nd.Instrs[i]
		if !in.HasDst() {
			continue
		}
		if in.Op == ir.Copy {
			tokens[in.Dst] = tokens[in.A]
			continue
		}
		tok := next
		next++
		var pd pdef
		switch in.Op {
		case ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge:
			pd = pdef{op: in.Op, tokA: tokens[in.A], tokB: tokens[in.B], isComparison: true}
		}
		pdefs = append(pdefs, pd)
		tokens[in.Dst] = tok
	}
	d.defs = pdefs
	condTok := tokens[nd.Cond]
	for v := range tokens {
		if tokens[v] == condTok {
			set(defs, v)
		}
	}
	if condTok < int32(d.nv) {
		return
	}
	pd := pdefs[condTok-int32(d.nv)]
	if !pd.isComparison {
		return
	}
	for v := range tokens {
		if tokens[v] == pd.tokA || tokens[v] == pd.tokB {
			set(defs, v)
		}
	}
}

// MeetMasked implements kernel.SparseDomain: the hull over exactly the
// masked cells, iterated bit by bit.
func (d *packedDomain) MeetMasked(dst, src int, mask, dirty []uint64) bool {
	dl, dh := d.spans.Row(dst)
	sl, sh := d.spans.Row(src)
	changed := false
	for w, m := range mask {
		for m != 0 {
			i := w*64 + mbits.TrailingZeros64(m)
			m &= m - 1
			if i >= len(dl) {
				break
			}
			mv := cell(dl, dh, i).Meet(cell(sl, sh, i))
			nl, nh := mv.Lo, mv.Hi
			if !mv.present {
				nl, nh = PosInf, NegInf
			}
			if nl != dl[i] || nh != dh[i] {
				dl[i], dh[i] = nl, nh
				dirty[w] |= 1 << (uint32(i) % 64)
				changed = true
			}
		}
	}
	return changed
}

// env boxes row r into a standard Env.
func (d *packedDomain) env(r int) Env {
	lo, hi := d.spans.Row(r)
	e := make(Env, len(lo))
	for i := range lo {
		e[i] = cell(lo, hi, i)
	}
	return e
}

// analyzePacked runs range analysis on the packed SoA kernel. The
// solution is pointwise equal to the boxed solver's for the same
// Problem, iteration counts included.
func analyzePacked(g *cfg.Graph, p *Problem) *Result {
	d := newPackedDomain(g, p)
	s := kernel.NewSolver(g, d)
	s.Run()
	sol := s.Materialize(func(row int) dataflow.Fact { return d.env(row) })
	return &Result{G: g, Sol: sol, n: p.NumVars}
}

// analyzeSparse runs range analysis on the sparse solver. Widening is
// order-sensitive, so the sparse schedule for this domain is the dense
// one (FIFO, every pop transfers) with masked deliveries — the
// trajectory, and therefore every fact, matches the dense kernel
// exactly, iteration counts included.
func analyzeSparse(g *cfg.Graph, p *Problem) *Result {
	d := newPackedDomain(g, p)
	s := kernel.NewSparseSolver(g, d)
	s.Run()
	sol := s.Materialize(func(row int) dataflow.Fact { return d.env(row) })
	return &Result{G: g, Sol: sol, n: p.NumVars}
}

// AnalyzePacked runs range analysis on the packed SoA kernel.
func AnalyzePacked(g *cfg.Graph, numVars int, conditional bool) *Result {
	return analyzePacked(g, &Problem{NumVars: numVars, Conditional: conditional})
}
