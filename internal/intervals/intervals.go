// Package intervals implements value-range analysis — a third data-flow
// client, this one over a lattice of *unbounded height*, exercising the
// framework's widening support. Facts map registers to integer intervals
// with ±∞ bounds; loops converge via widening (dataflow.Widener).
//
// Like the other clients, the analysis runs unchanged on hot path graphs:
// a range that merges to [-∞,+∞] on the original CFG can stay tight along
// a duplicated hot path. The analysis is branch-aware and refines
// comparison operands on both branch legs (`while (i < n)` teaches the
// loop body that i < n), using the same block-local value numbering as
// the sign analysis to see through the front end's lowering copies.
package intervals

import (
	"fmt"
	"math"

	"pathflow/internal/ir"
)

// Bounds sentinels: the extreme int64 values act as -∞ / +∞.
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// Interval is a closed integer interval [Lo, Hi], possibly unbounded.
// The zero value is the empty interval (⊤: no values observed).
type Interval struct {
	Lo, Hi int64
	// nonEmpty inverted so the zero value is empty.
	present bool
}

// EmptyI returns ⊤.
func EmptyI() Interval { return Interval{} }

// Full returns ⊥ = [-∞, +∞].
func Full() Interval { return Interval{Lo: NegInf, Hi: PosInf, present: true} }

// ConstI returns the singleton [k, k].
func ConstI(k int64) Interval { return Interval{Lo: k, Hi: k, present: true} }

// Range returns [lo, hi]; lo must not exceed hi.
func Range(lo, hi int64) Interval {
	if lo > hi {
		panic(fmt.Sprintf("intervals: bad range [%d,%d]", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi, present: true}
}

// IsEmpty reports ⊤.
func (a Interval) IsEmpty() bool { return !a.present }

// IsConst reports a singleton interval and its value.
func (a Interval) IsConst() (int64, bool) {
	if a.present && a.Lo == a.Hi {
		return a.Lo, true
	}
	return 0, false
}

// Bounded reports whether both ends are finite.
func (a Interval) Bounded() bool {
	return a.present && a.Lo != NegInf && a.Hi != PosInf
}

// Contains reports v ∈ a.
func (a Interval) Contains(v int64) bool { return a.present && a.Lo <= v && v <= a.Hi }

// Width returns Hi-Lo+1 for bounded intervals (used by metrics);
// unbounded or empty intervals return PosInf / 0.
func (a Interval) Width() int64 {
	if !a.present {
		return 0
	}
	if !a.Bounded() {
		return PosInf
	}
	w := a.Hi - a.Lo
	if w == PosInf { // overflow guard
		return PosInf
	}
	return w + 1
}

// Meet is the interval hull (join in range order; the lattice descends
// toward Full).
func (a Interval) Meet(b Interval) Interval {
	switch {
	case !a.present:
		return b
	case !b.present:
		return a
	}
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	return Interval{Lo: lo, Hi: hi, present: true}
}

// Widen extrapolates unstable bounds to infinity.
func (a Interval) Widen(b Interval) Interval {
	switch {
	case !a.present:
		return b
	case !b.present:
		return a
	}
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = NegInf
	}
	if b.Hi > hi {
		hi = PosInf
	}
	return Interval{Lo: lo, Hi: hi, present: true}
}

// Intersect clips a to b; the result may be empty.
func (a Interval) Intersect(b Interval) Interval {
	if !a.present || !b.present {
		return Interval{}
	}
	lo, hi := a.Lo, a.Hi
	if b.Lo > lo {
		lo = b.Lo
	}
	if b.Hi < hi {
		hi = b.Hi
	}
	if lo > hi {
		return Interval{}
	}
	return Interval{Lo: lo, Hi: hi, present: true}
}

func (a Interval) String() string {
	if !a.present {
		return "⊤"
	}
	lo, hi := "-∞", "+∞"
	if a.Lo != NegInf {
		lo = fmt.Sprintf("%d", a.Lo)
	}
	if a.Hi != PosInf {
		hi = fmt.Sprintf("%d", a.Hi)
	}
	return "[" + lo + "," + hi + "]"
}

// Saturating helpers treating the sentinels as infinities.

func addSat(a, b int64) int64 {
	switch {
	case a == NegInf || b == NegInf:
		return NegInf
	case a == PosInf || b == PosInf:
		return PosInf
	}
	s := a + b
	// Overflow checks.
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return PosInf
		}
		return NegInf
	}
	return s
}

func negSat(a int64) int64 {
	switch a {
	case NegInf:
		return PosInf
	case PosInf:
		return NegInf
	}
	return -a
}

// mulSat with the interval-arithmetic convention 0 × ∞ = 0.
func mulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	if a == NegInf || a == PosInf || b == NegInf || b == PosInf {
		if neg {
			return NegInf
		}
		return PosInf
	}
	p := a * b
	if p/b != a { // overflow
		if neg {
			return NegInf
		}
		return PosInf
	}
	return p
}

func divSat(a, b int64) int64 {
	// b is finite and non-zero here.
	switch a {
	case NegInf:
		if b > 0 {
			return NegInf
		}
		return PosInf
	case PosInf:
		if b > 0 {
			return PosInf
		}
		return NegInf
	}
	return a / b
}

// Arithmetic on intervals.

// Add returns a + b.
func (a Interval) Add(b Interval) Interval {
	if !a.present || !b.present {
		return Interval{}
	}
	return Interval{Lo: addSat(a.Lo, b.Lo), Hi: addSat(a.Hi, b.Hi), present: true}
}

// Neg returns -a.
func (a Interval) Neg() Interval {
	if !a.present {
		return a
	}
	return Interval{Lo: negSat(a.Hi), Hi: negSat(a.Lo), present: true}
}

// Sub returns a - b.
func (a Interval) Sub(b Interval) Interval { return a.Add(b.Neg()) }

// Mul returns a × b.
func (a Interval) Mul(b Interval) Interval {
	if !a.present || !b.present {
		return Interval{}
	}
	c := [...]int64{
		mulSat(a.Lo, b.Lo), mulSat(a.Lo, b.Hi),
		mulSat(a.Hi, b.Lo), mulSat(a.Hi, b.Hi),
	}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return Interval{Lo: lo, Hi: hi, present: true}
}

// Div returns a / b under the IR's total division (x/0 = 0, truncation
// toward zero).
func (a Interval) Div(b Interval) Interval {
	if !a.present || !b.present {
		return Interval{}
	}
	out := Interval{}
	if b.Contains(0) {
		out = out.Meet(ConstI(0)) // the defined x/0 = 0 case
	}
	if pos := b.Intersect(Range(1, PosInf)); !pos.IsEmpty() {
		out = out.Meet(divByNonzero(a, pos))
	}
	if neg := b.Intersect(Range(NegInf, -1)); !neg.IsEmpty() {
		out = out.Meet(divByNonzero(a, neg))
	}
	return out
}

// divByNonzero divides by an interval that does not contain zero.
func divByNonzero(a, b Interval) Interval {
	// Endpoint candidates suffice: for fixed divisor the quotient is
	// monotone in the dividend, and for a fixed dividend it is
	// piecewise monotone in the divisor with extremes at the endpoints.
	// Infinite divisor endpoints drive the quotient toward 0.
	cand := make([]int64, 0, 4)
	for _, x := range [...]int64{a.Lo, a.Hi} {
		for _, y := range [...]int64{b.Lo, b.Hi} {
			if y == NegInf || y == PosInf {
				cand = append(cand, 0)
				continue
			}
			cand = append(cand, divSat(x, y))
		}
	}
	lo, hi := cand[0], cand[0]
	for _, v := range cand[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return Interval{Lo: lo, Hi: hi, present: true}
}

// Mod returns a % b under the IR semantics (x%0 = 0; the result takes the
// dividend's sign and |result| < |b|).
func (a Interval) Mod(b Interval) Interval {
	if !a.present || !b.present {
		return Interval{}
	}
	// Largest possible |b| - 1.
	maxAbs := int64(PosInf)
	if b.Lo != NegInf && b.Hi != PosInf {
		la, lb := b.Lo, b.Hi
		if la < 0 {
			la = -la
		}
		if lb < 0 {
			lb = -lb
		}
		if lb > la {
			la = lb
		}
		if la > 0 {
			maxAbs = la - 1
		} else {
			maxAbs = 0
		}
	}
	lo, hi := int64(0), int64(0)
	if a.Hi > 0 {
		hi = maxAbs
		if a.Hi != PosInf && a.Hi < hi {
			hi = a.Hi
		}
	}
	if a.Lo < 0 {
		lo = negSat(maxAbs)
		if a.Lo != NegInf && a.Lo > lo {
			lo = a.Lo
		}
	}
	return Interval{Lo: lo, Hi: hi, present: true}
}

// nextPow2Minus1 returns the smallest 2^k-1 ≥ v (for v ≥ 0).
func nextPow2Minus1(v int64) int64 {
	if v < 0 {
		return 0
	}
	m := int64(1)
	for m-1 < v {
		if m > (PosInf >> 1) {
			return PosInf
		}
		m <<= 1
	}
	return m - 1
}

// EvalBin computes op over intervals.
func EvalBin(op ir.Op, a, b Interval) Interval {
	if !a.present || !b.present {
		return Interval{}
	}
	switch op {
	case ir.Add:
		return a.Add(b)
	case ir.Sub:
		return a.Sub(b)
	case ir.Mul:
		return a.Mul(b)
	case ir.Div:
		return a.Div(b)
	case ir.Mod:
		return a.Mod(b)
	case ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge:
		return cmpIntervals(op, a, b)
	case ir.And:
		if a.Lo >= 0 && b.Lo >= 0 {
			hi := a.Hi
			if b.Hi < hi {
				hi = b.Hi
			}
			return Interval{Lo: 0, Hi: hi, present: true}
		}
		return Full()
	case ir.Or, ir.Xor:
		if a.Lo >= 0 && b.Lo >= 0 {
			if a.Hi == PosInf || b.Hi == PosInf {
				return Range(0, PosInf)
			}
			m := nextPow2Minus1(a.Hi)
			if n := nextPow2Minus1(b.Hi); n > m {
				m = n
			}
			return Interval{Lo: 0, Hi: m, present: true}
		}
		return Full()
	case ir.Shl:
		if ka, ok := a.IsConst(); ok {
			if kb, okb := b.IsConst(); okb {
				return ConstI(ir.EvalBin(ir.Shl, ka, kb))
			}
		}
		if a.Lo == 0 && a.Hi == 0 {
			return ConstI(0)
		}
		return Full()
	case ir.Shr:
		if b.Lo >= 0 && b.Hi <= 63 {
			if a.Lo >= 0 {
				lo := a.Lo >> uint(b.Hi)
				hi := a.Hi
				if hi != PosInf {
					hi = a.Hi >> uint(b.Lo)
				}
				return Interval{Lo: lo, Hi: hi, present: true}
			}
		}
		if ka, ok := a.IsConst(); ok {
			if kb, okb := b.IsConst(); okb {
				return ConstI(ir.EvalBin(ir.Shr, ka, kb))
			}
		}
		return Full()
	}
	return Full()
}

// cmpIntervals decides comparisons where the ranges are disjoint enough.
func cmpIntervals(op ir.Op, a, b Interval) Interval {
	var maybeTrue, maybeFalse bool
	decide := func(alwaysTrue, alwaysFalse bool) {
		switch {
		case alwaysTrue:
			maybeTrue = true
		case alwaysFalse:
			maybeFalse = true
		default:
			maybeTrue, maybeFalse = true, true
		}
	}
	switch op {
	case ir.Lt:
		decide(a.Hi < b.Lo, a.Lo >= b.Hi)
	case ir.Le:
		decide(a.Hi <= b.Lo, a.Lo > b.Hi)
	case ir.Gt:
		decide(a.Lo > b.Hi, a.Hi <= b.Lo)
	case ir.Ge:
		decide(a.Lo >= b.Hi, a.Hi < b.Lo)
	case ir.Eq:
		ka, oka := a.IsConst()
		kb, okb := b.IsConst()
		decide(oka && okb && ka == kb, a.Intersect(b).IsEmpty())
	case ir.Ne:
		ka, oka := a.IsConst()
		kb, okb := b.IsConst()
		decide(a.Intersect(b).IsEmpty(), oka && okb && ka == kb)
	}
	switch {
	case maybeTrue && maybeFalse:
		return Range(0, 1)
	case maybeTrue:
		return ConstI(1)
	default:
		return ConstI(0)
	}
}

// EvalUn computes unary ops over intervals.
func EvalUn(op ir.Op, a Interval) Interval {
	if !a.present {
		return a
	}
	switch op {
	case ir.Copy:
		return a
	case ir.Neg:
		return a.Neg()
	case ir.Not:
		if !a.Contains(0) {
			return ConstI(0)
		}
		if k, ok := a.IsConst(); ok && k == 0 {
			return ConstI(1)
		}
		return Range(0, 1)
	}
	return Full()
}
