// Package ir defines the register-based intermediate representation that
// the rest of pathflow analyzes and executes.
//
// The IR deliberately matches the granularity of the "SUIF instructions"
// that Ammons & Larus (PLDI 1998) measure: every instruction produces at
// most one value into a virtual register (a Var), reads at most two
// registers, and has no hidden state. Constants enter a function only
// through Const instructions, so "assignments of constants" are exactly
// the locally-constant instructions of the paper's Figure 13 taxonomy.
//
// Sources of values the analyses cannot see are explicit: Input reads the
// next value from the run's input stream, Arg reads a fixed run parameter,
// and Call invokes another function (executed by the interpreter but
// treated as bottom by constant propagation, mirroring the paper's
// conservative handling of calls).
package ir

import (
	"fmt"
	"strings"
)

// Value is the runtime value type of the IR: a 64-bit signed integer.
// Comparisons produce 1 (true) or 0 (false).
type Value = int64

// Var names a virtual register inside one function. NoVar marks an unused
// operand slot.
type Var int32

// NoVar is the sentinel for "no register" (e.g. the Dst of a Print).
const NoVar Var = -1

// Valid reports whether v names a real register.
func (v Var) Valid() bool { return v >= 0 }

// Op enumerates the instruction opcodes.
type Op uint8

// The opcode set. Arithmetic and comparison opcodes read registers A and B;
// unary opcodes read A only.
const (
	Nop   Op = iota // no operation
	Const           // Dst = K
	Copy            // Dst = A
	Neg             // Dst = -A
	Not             // Dst = (A == 0)
	Add             // Dst = A + B
	Sub             // Dst = A - B
	Mul             // Dst = A * B
	Div             // Dst = A / B (0 when B == 0; see EvalBin)
	Mod             // Dst = A % B (0 when B == 0)
	Eq              // Dst = (A == B)
	Ne              // Dst = (A != B)
	Lt              // Dst = (A < B)
	Le              // Dst = (A <= B)
	Gt              // Dst = (A > B)
	Ge              // Dst = (A >= B)
	And             // Dst = A & B
	Or              // Dst = A | B
	Xor             // Dst = A ^ B
	Shl             // Dst = A << (B & 63)
	Shr             // Dst = A >> (B & 63)
	Input           // Dst = next value of the input stream (opaque)
	Arg             // Dst = run argument number K (opaque)
	Call            // Dst = Callee(Args...) (opaque to analysis)
	Print           // emit A to the run's output (no Dst)
	numOps
)

var opNames = [numOps]string{
	Nop: "nop", Const: "const", Copy: "copy", Neg: "neg", Not: "not",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	Input: "input", Arg: "arg", Call: "call", Print: "print",
}

// String returns the assembler-style mnemonic of the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsBinary reports whether op reads both A and B.
func (op Op) IsBinary() bool { return op >= Add && op <= Shr }

// IsUnary reports whether op reads only A.
func (op Op) IsUnary() bool { return op == Copy || op == Neg || op == Not }

// IsPure reports whether the instruction's result depends only on its
// register operands (and constant K), so that a constant result may be
// folded. Input, Arg, Call and Print are impure.
func (op Op) IsPure() bool {
	switch op {
	case Input, Arg, Call, Print, Nop:
		return false
	}
	return true
}

// Opaque reports whether op produces a value the data-flow analyses must
// treat as unknowable (paper Figure 13: "our analyses do not track ...
// the results of calls").
func (op Op) Opaque() bool { return op == Input || op == Arg || op == Call }

// Instr is a single IR instruction. The zero value is a Nop.
type Instr struct {
	Op     Op
	Dst    Var    // result register, NoVar if the op produces none
	A, B   Var    // operand registers, NoVar if unused
	K      Value  // Const: the literal; Arg: the argument index
	Callee string // Call: target function name
	Args   []Var  // Call: argument registers
}

// HasDst reports whether the instruction writes a register.
func (in *Instr) HasDst() bool { return in.Dst.Valid() }

// Uses appends the registers read by the instruction to dst and returns it.
func (in *Instr) Uses(dst []Var) []Var {
	switch {
	case in.Op == Call:
		dst = append(dst, in.Args...)
	case in.Op == Print:
		dst = append(dst, in.A)
	case in.Op.IsBinary():
		dst = append(dst, in.A, in.B)
	case in.Op.IsUnary():
		dst = append(dst, in.A)
	}
	return dst
}

// EvalBin computes a binary operation on concrete values. Division and
// modulus by zero are defined to produce 0, so that execution, analysis
// and folding agree on every input.
func EvalBin(op Op, a, b Value) Value {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return a / b
	case Mod:
		if b == 0 {
			return 0
		}
		return a % b
	case Eq:
		return b2v(a == b)
	case Ne:
		return b2v(a != b)
	case Lt:
		return b2v(a < b)
	case Le:
		return b2v(a <= b)
	case Gt:
		return b2v(a > b)
	case Ge:
		return b2v(a >= b)
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Shl:
		return a << (uint64(b) & 63)
	case Shr:
		return a >> (uint64(b) & 63)
	}
	panic(fmt.Sprintf("ir: EvalBin called with non-binary op %v", op))
}

// EvalUn computes a unary operation on a concrete value.
func EvalUn(op Op, a Value) Value {
	switch op {
	case Copy:
		return a
	case Neg:
		return -a
	case Not:
		return b2v(a == 0)
	}
	panic(fmt.Sprintf("ir: EvalUn called with non-unary op %v", op))
}

func b2v(b bool) Value {
	if b {
		return 1
	}
	return 0
}

// String renders the instruction in a readable assembler-like syntax using
// vN register names. Use Func.InstrString for named registers.
func (in *Instr) String() string { return in.string(nil) }

func (in *Instr) string(names []string) string {
	v := func(x Var) string {
		if !x.Valid() {
			return "_"
		}
		if names != nil && int(x) < len(names) && names[x] != "" {
			return names[x]
		}
		return fmt.Sprintf("v%d", x)
	}
	switch {
	case in.Op == Nop:
		return "nop"
	case in.Op == Const:
		return fmt.Sprintf("%s = const %d", v(in.Dst), in.K)
	case in.Op == Arg:
		return fmt.Sprintf("%s = arg %d", v(in.Dst), in.K)
	case in.Op == Input:
		return fmt.Sprintf("%s = input", v(in.Dst))
	case in.Op == Call:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = v(a)
		}
		return fmt.Sprintf("%s = call %s(%s)", v(in.Dst), in.Callee, strings.Join(args, ", "))
	case in.Op == Print:
		return fmt.Sprintf("print %s", v(in.A))
	case in.Op.IsUnary():
		return fmt.Sprintf("%s = %s %s", v(in.Dst), in.Op, v(in.A))
	case in.Op.IsBinary():
		return fmt.Sprintf("%s = %s %s, %s", v(in.Dst), in.Op, v(in.A), v(in.B))
	}
	return fmt.Sprintf("%s ?", in.Op)
}

// Validate checks structural invariants of a single instruction given the
// number of registers in the enclosing function.
func (in *Instr) Validate(numVars int) error {
	ck := func(x Var, need bool, what string) error {
		if need && !x.Valid() {
			return fmt.Errorf("ir: %v: missing %s register", in.Op, what)
		}
		if x.Valid() && int(x) >= numVars {
			return fmt.Errorf("ir: %v: %s register v%d out of range (%d vars)", in.Op, what, x, numVars)
		}
		return nil
	}
	switch {
	case in.Op == Nop:
		return nil
	case in.Op == Const, in.Op == Arg, in.Op == Input:
		return ck(in.Dst, true, "dst")
	case in.Op == Call:
		if err := ck(in.Dst, true, "dst"); err != nil {
			return err
		}
		if in.Callee == "" {
			return fmt.Errorf("ir: call with empty callee")
		}
		for _, a := range in.Args {
			if err := ck(a, true, "arg"); err != nil {
				return err
			}
		}
		return nil
	case in.Op == Print:
		return ck(in.A, true, "src")
	case in.Op.IsUnary():
		if err := ck(in.Dst, true, "dst"); err != nil {
			return err
		}
		return ck(in.A, true, "src")
	case in.Op.IsBinary():
		if err := ck(in.Dst, true, "dst"); err != nil {
			return err
		}
		if err := ck(in.A, true, "lhs"); err != nil {
			return err
		}
		return ck(in.B, true, "rhs")
	}
	return fmt.Errorf("ir: unknown opcode %d", uint8(in.Op))
}
