package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	// Every opcode is exactly one of: nullary producer, unary, binary,
	// or effect-only.
	for op := Op(0); op < 32; op++ {
		if op.String() == "" {
			continue
		}
		classes := 0
		if op.IsUnary() {
			classes++
		}
		if op.IsBinary() {
			classes++
		}
		if classes > 1 {
			t.Errorf("%v is both unary and binary", op)
		}
	}
	if !Add.IsBinary() || !Shr.IsBinary() || Add.IsUnary() {
		t.Error("binary classification broken")
	}
	if !Copy.IsUnary() || !Not.IsUnary() || Copy.IsBinary() {
		t.Error("unary classification broken")
	}
	for _, op := range []Op{Input, Arg, Call} {
		if !op.Opaque() || op.IsPure() {
			t.Errorf("%v must be opaque and impure", op)
		}
	}
	for _, op := range []Op{Const, Copy, Add, Div, Eq, Shl} {
		if !op.IsPure() || op.Opaque() {
			t.Errorf("%v must be pure and not opaque", op)
		}
	}
	if Print.IsPure() || Nop.IsPure() {
		t.Error("print/nop must be impure")
	}
}

func TestEvalBin(t *testing.T) {
	cases := []struct {
		op      Op
		a, b, w Value
	}{
		{Add, 2, 3, 5},
		{Sub, 2, 3, -1},
		{Mul, -4, 3, -12},
		{Div, 7, 2, 3},
		{Div, 7, 0, 0}, // division by zero is defined as 0
		{Div, -7, 2, -3},
		{Mod, 7, 3, 1},
		{Mod, 7, 0, 0},
		{Mod, -7, 3, -1},
		{Eq, 3, 3, 1},
		{Eq, 3, 4, 0},
		{Ne, 3, 4, 1},
		{Lt, -1, 0, 1},
		{Le, 0, 0, 1},
		{Gt, 1, 0, 1},
		{Ge, -1, 0, 0},
		{And, 6, 3, 2},
		{Or, 6, 3, 7},
		{Xor, 6, 3, 5},
		{Shl, 1, 4, 16},
		{Shl, 1, 64, 1}, // shift counts are masked mod 64
		{Shl, 1, 65, 2}, // 65 & 63 == 1
		{Shr, 16, 4, 1},
		{Shr, -16, 1, -8}, // arithmetic shift
	}
	for _, tc := range cases {
		if got := EvalBin(tc.op, tc.a, tc.b); got != tc.w {
			t.Errorf("EvalBin(%v, %d, %d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.w)
		}
	}
}

func TestEvalUn(t *testing.T) {
	if EvalUn(Copy, 42) != 42 || EvalUn(Neg, 42) != -42 {
		t.Error("copy/neg broken")
	}
	if EvalUn(Not, 0) != 1 || EvalUn(Not, 7) != 0 {
		t.Error("not broken")
	}
}

func TestEvalPanicsOnWrongArity(t *testing.T) {
	assertPanics(t, func() { EvalBin(Copy, 1, 2) })
	assertPanics(t, func() { EvalUn(Add, 1) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// Comparisons always yield 0 or 1 — checked with testing/quick.
func TestComparisonsAreBoolean(t *testing.T) {
	f := func(a, b int64) bool {
		for _, op := range []Op{Eq, Ne, Lt, Le, Gt, Ge} {
			v := EvalBin(op, a, b)
			if v != 0 && v != 1 {
				return false
			}
		}
		// Trichotomy: exactly one of <, ==, > holds.
		n := EvalBin(Lt, a, b) + EvalBin(Eq, a, b) + EvalBin(Gt, a, b)
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Division identity: (a/b)*b + a%b == a for b != 0 — checked with
// testing/quick.
func TestDivModIdentity(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 {
			return EvalBin(Div, a, b) == 0 && EvalBin(Mod, a, b) == 0
		}
		if a == -1<<63 && b == -1 {
			return true // Go's division overflow case; unused by the IR's clients
		}
		return EvalBin(Div, a, b)*b+EvalBin(Mod, a, b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Const, Dst: 0, A: NoVar, B: NoVar, K: 7}, "v0 = const 7"},
		{Instr{Op: Copy, Dst: 1, A: 0, B: NoVar}, "v1 = copy v0"},
		{Instr{Op: Add, Dst: 2, A: 0, B: 1}, "v2 = add v0, v1"},
		{Instr{Op: Input, Dst: 3, A: NoVar, B: NoVar}, "v3 = input"},
		{Instr{Op: Arg, Dst: 3, A: NoVar, B: NoVar, K: 2}, "v3 = arg 2"},
		{Instr{Op: Print, Dst: NoVar, A: 1, B: NoVar}, "print v1"},
		{Instr{Op: Call, Dst: 4, A: NoVar, B: NoVar, Callee: "f", Args: []Var{0, 1}}, "v4 = call f(v0, v1)"},
		{Instr{Op: Nop}, "nop"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestInstrUses(t *testing.T) {
	add := Instr{Op: Add, Dst: 2, A: 0, B: 1}
	if got := add.Uses(nil); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Uses(add) = %v", got)
	}
	call := Instr{Op: Call, Dst: 4, Callee: "f", Args: []Var{3, 2}}
	if got := call.Uses(nil); len(got) != 2 || got[0] != 3 {
		t.Errorf("Uses(call) = %v", got)
	}
	k := Instr{Op: Const, Dst: 0, A: NoVar, B: NoVar}
	if got := k.Uses(nil); len(got) != 0 {
		t.Errorf("Uses(const) = %v", got)
	}
}

func TestInstrValidate(t *testing.T) {
	ok := []Instr{
		{Op: Const, Dst: 0, A: NoVar, B: NoVar},
		{Op: Add, Dst: 0, A: 1, B: 2},
		{Op: Print, Dst: NoVar, A: 0, B: NoVar},
		{Op: Call, Dst: 0, A: NoVar, B: NoVar, Callee: "f", Args: []Var{1}},
		{Op: Nop},
	}
	for _, in := range ok {
		if err := in.Validate(3); err != nil {
			t.Errorf("Validate(%s) = %v", in.String(), err)
		}
	}
	bad := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Const, Dst: NoVar, A: NoVar, B: NoVar}, "missing dst"},
		{Instr{Op: Add, Dst: 0, A: NoVar, B: 1}, "missing lhs"},
		{Instr{Op: Add, Dst: 0, A: 1, B: 9}, "out of range"},
		{Instr{Op: Call, Dst: 0, A: NoVar, B: NoVar, Callee: ""}, "empty callee"},
		{Instr{Op: Print, Dst: NoVar, A: NoVar, B: NoVar}, "missing src"},
		{Instr{Op: Op(200), Dst: 0}, "unknown opcode"},
	}
	for _, tc := range bad {
		err := tc.in.Validate(3)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%v) = %v, want containing %q", tc.in, err, tc.want)
		}
	}
}

func TestVarValid(t *testing.T) {
	if NoVar.Valid() || !Var(0).Valid() {
		t.Error("Var.Valid broken")
	}
}
