package classify

import (
	"sort"

	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
)

// SiteConstDyn returns the dynamic executions of instructions with
// constant results on graph g: for every node, the number of constant
// instructions at that site times the node's execution frequency. This is
// the quantity behind the paper's Figure 9 ("increase in instructions
// with constant results, weighted dynamically"). With excludeLocal set it
// counts only non-local constants, the quantity the paper's headline
// "2-112 times more non-local constants" compares.
func SiteConstDyn(g *cfg.Graph, sol *constprop.Result, freq []int64, numVars int, excludeLocal bool) int64 {
	var total int64
	for _, nd := range g.Nodes {
		if freq[nd.ID] == 0 || len(nd.Instrs) == 0 {
			continue
		}
		flags := constprop.ConstFlags(g, nd.ID, sol.EnvAt(nd.ID), numVars, excludeLocal)
		var n int64
		for _, f := range flags {
			if f {
				n++
			}
		}
		total += n * freq[nd.ID]
	}
	return total
}

// BlockConstWeights returns, per node of g, the dynamic executions of
// non-local constant instructions: the per-block weights behind the
// paper's Figure 7 distribution and the §5 reduction heuristic.
func BlockConstWeights(g *cfg.Graph, sol *constprop.Result, freq []int64, numVars int) []int64 {
	out := make([]int64, g.NumNodes())
	for _, nd := range g.Nodes {
		if len(nd.Instrs) == 0 {
			continue
		}
		flags := constprop.ConstFlags(g, nd.ID, sol.EnvAt(nd.ID), numVars, true)
		var n int64
		for _, f := range flags {
			if f {
				n++
			}
		}
		out[nd.ID] = n * freq[nd.ID]
	}
	return out
}

// DecidedBranches counts branch terminators whose condition is a known
// constant under the solution — branches that could be eliminated or
// threaded away. Path qualification turns branches that are only
// predictable *along a path* into decided branches at the duplicated
// sites, which is how the paper's §7 relates this work to Mueller &
// Whalley's branch elimination by code replication. Returns static sites
// and, when freq is non-nil, dynamic executions.
func DecidedBranches(g *cfg.Graph, sol *constprop.Result, freq []int64) (static int, dyn int64) {
	for _, nd := range g.Nodes {
		if nd.Kind != cfg.TermBranch || !sol.Reached(nd.ID) {
			continue
		}
		env, _ := constprop.TransferBlock(g, nd.ID, sol.EnvAt(nd.ID), false)
		if env[nd.Cond].IsConst() {
			static++
			if freq != nil {
				dyn += freq[nd.ID]
			}
		}
	}
	return static, dyn
}

// CumulativePoint is one point of a Figure 7 curve.
type CumulativePoint struct {
	Blocks   int     // number of hottest blocks included
	Fraction float64 // fraction of dynamic non-local constants covered
}

// CumulativeDistribution sorts block weights in descending order and
// returns the running coverage, which reproduces the paper's Figure 7:
// how many basic blocks account for the program's non-local constants.
// Zero-weight blocks are omitted.
func CumulativeDistribution(weights []int64) []CumulativePoint {
	ws := make([]int64, 0, len(weights))
	var total int64
	for _, w := range weights {
		if w > 0 {
			ws = append(ws, w)
			total += w
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] > ws[j] })
	pts := make([]CumulativePoint, 0, len(ws))
	var acc int64
	for i, w := range ws {
		acc += w
		pts = append(pts, CumulativePoint{Blocks: i + 1, Fraction: float64(acc) / float64(total)})
	}
	return pts
}
