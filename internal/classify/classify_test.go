package classify_test

import (
	"testing"

	"pathflow/internal/automaton"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	. "pathflow/internal/classify"
	"pathflow/internal/constprop"
	"pathflow/internal/interp"
	"pathflow/internal/ir"
	"pathflow/internal/lang"
	"pathflow/internal/paperex"
	"pathflow/internal/profile"
	"pathflow/internal/trace"
)

// qualify runs profile → automaton → trace for fn with all executed paths
// hot, returning the HPG and its solution.
func qualify(t *testing.T, fn *cfg.Func, pr *bl.Profile, ca float64) (*trace.HPG, *constprop.Result) {
	t.Helper()
	hot := profile.SelectHot(pr, fn.G, ca)
	a, err := automaton.New(fn.G, pr.R, hot)
	if err != nil {
		t.Fatal(err)
	}
	h, err := trace.Build(fn, a)
	if err != nil {
		t.Fatal(err)
	}
	return h, constprop.Analyze(h.G, fn.NumVars(), true)
}

func profileOf(t *testing.T, prog *cfg.Program, inputs []ir.Value) *bl.Profile {
	t.Helper()
	pp, _, err := bl.ProfileProgram(prog, interp.Options{Input: &interp.SliceInput{Values: inputs}})
	if err != nil {
		t.Fatal(err)
	}
	return pp.Funcs[prog.Main().Name]
}

func classifyExample(t *testing.T, ca float64) (*Report, *trace.HPG) {
	t.Helper()
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	h, hsol := qualify(t, f, pr, ca)
	rep := Classify(Input{
		Fn:              f,
		EvalProfile:     pr,
		OrigSol:         constprop.Analyze(f.G, f.NumVars(), true),
		Overlay:         h,
		OverlaySol:      hsol,
		OverlayOrigNode: func(n cfg.NodeID) cfg.NodeID { return h.OrigNode[n] },
	})
	return rep, h
}

func TestClassifyTaxonomyOnExample(t *testing.T) {
	rep, _ := classifyExample(t, 1.0)
	// Static: 7 Local (a=2, i=0, b=4, b=3, c=5, b=2, one=1), 3
	// Unknowable (the three input() reads), 3 Partial (x=a+b, i=i+1,
	// n=i — each constant on hot duplicates and ⊥ on the ε duplicates).
	if got := rep.Static[Local]; got != 7 {
		t.Errorf("static Local = %d, want 7", got)
	}
	if got := rep.Static[Unknowable]; got != 3 {
		t.Errorf("static Unknowable = %d, want 3", got)
	}
	if got := rep.Static[Partial]; got != 3 {
		t.Errorf("static Partial = %d, want 3", got)
	}
	for _, c := range []Category{Iterative, Identical, Variable, Dynamic} {
		if rep.Static[c] != 0 {
			t.Errorf("static %v = %d, want 0", c, rep.Static[c])
		}
	}
	// Dynamic totals: profile covers 2140 instructions.
	if rep.TotalDyn != 2140 {
		t.Errorf("TotalDyn = %d, want 2140", rep.TotalDyn)
	}
	// Dynamic Partial weight: x (freq H = 230) + i (230) + n (freq I =
	// 100) = 560.
	if got := rep.Dyn[Partial]; got != 560 {
		t.Errorf("dyn Partial = %d, want 560", got)
	}
}

func TestClassifyWithoutOverlay(t *testing.T) {
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	rep := Classify(Input{
		Fn:          f,
		EvalProfile: pr,
		OrigSol:     constprop.Analyze(f.G, f.NumVars(), true),
	})
	// Without qualification nothing is Partial; x, i, n become Dynamic
	// (they are not always-tainted: b and the constants are clean).
	if rep.Static[Partial] != 0 || rep.Static[Identical] != 0 {
		t.Errorf("qualified categories populated without overlay: %+v", rep.Static)
	}
	if got := rep.Static[Dynamic]; got != 3 {
		t.Errorf("static Dynamic = %d, want 3", got)
	}
}

// TestClassifyIdentical uses the classic non-distributivity example: both
// branch legs produce a+b = 3, which meet-over-paths sees but iterative
// Wegman-Zadek does not. Path qualification recovers it with the same
// value at every duplicate: the Identical category.
func TestClassifyIdentical(t *testing.T) {
	src := `
func main() {
	t = input();
	if (t > 0) { a = 1; b = 2; } else { a = 2; b = 1; }
	x = a + b;
	print(x);
}`
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Main()
	// Run both legs so both paths are in the profile.
	pr := profileOf(t, prog, []ir.Value{1, 0})
	h, hsol := qualify(t, fn, pr, 1.0)
	rep := Classify(Input{
		Fn:              fn,
		EvalProfile:     pr,
		OrigSol:         constprop.Analyze(fn.G, fn.NumVars(), true),
		Overlay:         h,
		OverlaySol:      hsol,
		OverlayOrigNode: func(n cfg.NodeID) cfg.NodeID { return h.OrigNode[n] },
	})
	// x = a + b is Identical (3 at every duplicate); the lowering's
	// copies of a and b are Variable (1/2 at one duplicate, 2/1 at the
	// other).
	if rep.Static[Identical] == 0 {
		t.Errorf("want Identical instructions, got %+v", rep.Static)
	}
	if rep.Static[Variable] != 2 {
		t.Errorf("Variable = %d, want 2 (the copies of a and b)", rep.Static[Variable])
	}
}

// TestClassifyVariable: the legs produce different constants, so the
// duplicated sites hold different values — only duplication reveals them.
func TestClassifyVariable(t *testing.T) {
	src := `
func main() {
	t = input();
	if (t > 0) { b = 10; } else { b = 20; }
	x = b * 2;
	print(x);
}`
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Main()
	pr := profileOf(t, prog, []ir.Value{1, 0})
	h, hsol := qualify(t, fn, pr, 1.0)
	rep := Classify(Input{
		Fn:              fn,
		EvalProfile:     pr,
		OrigSol:         constprop.Analyze(fn.G, fn.NumVars(), true),
		Overlay:         h,
		OverlaySol:      hsol,
		OverlayOrigNode: func(n cfg.NodeID) cfg.NodeID { return h.OrigNode[n] },
	})
	if rep.Static[Variable] == 0 {
		t.Errorf("want Variable instructions, got %+v", rep.Static)
	}
}

func TestTaint(t *testing.T) {
	src := `
func main() {
	a = input();
	b = 3;
	c = a + b;
	d = b * 2;
	t = input();
	if (t > 0) { e = input(); } else { e = 7; }
	f = e + 1;
	print(c + d + f);
}`
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Main()
	taint := SolveTaint(fn.G, fn.NumVars())
	varIdx := func(name string) ir.Var {
		for i, n := range fn.VarNames {
			if n == name {
				return ir.Var(i)
			}
		}
		t.Fatalf("no var %s", name)
		return ir.NoVar
	}
	exit := fn.G.Exit
	cases := []struct {
		name string
		want bool
	}{
		{"a", true},  //直接 from input
		{"b", false}, // constant
		{"c", true},  // input + const
		{"d", false}, // const * const
		{"e", false}, // tainted on one path only: maybe-clean
		{"f", false}, // derives from e
	}
	for _, tc := range cases {
		if got := taint.TaintedAt(exit, varIdx(tc.name)); got != tc.want {
			t.Errorf("tainted(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSiteConstDynOnExample(t *testing.T) {
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	h, hsol := qualify(t, f, pr, 1.0)
	tp, err := profile.Translate(pr, f.G, h)
	if err != nil {
		t.Fatal(err)
	}
	freq := profile.NodeFrequencies(tp, h.G)
	// Paper §5 weights: 140 + 100 + 70 + 60 + 30 = 400 dynamic
	// non-local constants on the HPG.
	got := SiteConstDyn(h.G, hsol, freq, f.NumVars(), true)
	if got != 400 {
		t.Errorf("HPG non-local const dyn = %d, want 400", got)
	}
	// Baseline on the original graph: zero non-local constants.
	origSol := constprop.Analyze(f.G, f.NumVars(), true)
	ofreq := profile.NodeFrequencies(pr, f.G)
	if base := SiteConstDyn(f.G, origSol, ofreq, f.NumVars(), true); base != 0 {
		t.Errorf("original non-local const dyn = %d, want 0", base)
	}
	// Including local constants: locals execute A(2 consts × 100) +
	// C(1 × 70) + D(1 × 160) + F(1 × 130) + G(1 × 100) + H(one, 1 × 230)
	// = 200+70+160+130+100+230 = 890; plus the 400 non-local.
	withLocal := SiteConstDyn(h.G, hsol, freq, f.NumVars(), false)
	if withLocal != 890+400 {
		t.Errorf("HPG const dyn = %d, want %d", withLocal, 890+400)
	}
}

func TestBlockConstWeightsMatchReduceWeights(t *testing.T) {
	f, _, edges := paperex.Build()
	pr := paperex.Profile(edges)
	h, hsol := qualify(t, f, pr, 1.0)
	tp, err := profile.Translate(pr, f.G, h)
	if err != nil {
		t.Fatal(err)
	}
	freq := profile.NodeFrequencies(tp, h.G)
	weights := BlockConstWeights(h.G, hsol, freq, f.NumVars())
	byName := map[string]int64{}
	for _, nd := range h.G.Nodes {
		byName[nd.Name] = weights[nd.ID]
	}
	want := map[string]int64{"H12": 30, "H13": 100, "H14": 140, "H15": 60, "I17": 70}
	for name, w := range want {
		if byName[name] != w {
			t.Errorf("weight[%s] = %d, want %d", name, byName[name], w)
		}
	}
}

func TestCumulativeDistribution(t *testing.T) {
	pts := CumulativeDistribution([]int64{0, 30, 100, 140, 60, 70, 0})
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5 (zero-weight blocks omitted)", len(pts))
	}
	if pts[0].Blocks != 1 || pts[0].Fraction != 140.0/400 {
		t.Errorf("first point = %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Fraction != 1.0 {
		t.Errorf("last fraction = %v, want 1", last.Fraction)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Fraction < pts[i-1].Fraction {
			t.Error("cumulative fractions must be non-decreasing")
		}
	}
	if got := CumulativeDistribution(nil); len(got) != 0 {
		t.Error("empty weights should yield no points")
	}
}

func TestReportAddAndString(t *testing.T) {
	a := &Report{TotalDyn: 10}
	a.Dyn[Local] = 4
	a.Static[Local] = 1
	b := &Report{TotalDyn: 20}
	b.Dyn[Local] = 6
	a.Add(b)
	if a.TotalDyn != 30 || a.Dyn[Local] != 10 {
		t.Errorf("Add: %+v", a)
	}
	if a.Frac(Local) != 10.0/30 {
		t.Errorf("Frac = %v", a.Frac(Local))
	}
	if s := a.String(); len(s) == 0 {
		t.Error("empty String")
	}
	if (&Report{}).Frac(Local) != 0 {
		t.Error("Frac on empty report should be 0")
	}
}
