// Package classify implements the taxonomy of Figure 13 in Ammons & Larus
// (PLDI 1998), which drives the paper's Figure 7, Figure 9 and Figure 10
// experiments: every dynamic instruction is placed in exactly one of
//
//	Local       — constant by analysis of its basic block alone,
//	Iterative   — constant by Wegman-Zadek analysis of the original CFG,
//	Identical   — constant with one value at every duplicate in the
//	              qualified (traced + reduced) graph, but not Iterative,
//	Variable    — constant at every duplicate but with different values
//	              at different sites (only duplication reveals these),
//	Partial     — constant at one or more sites and unknown at one or
//	              more sites (the paper: "most instructions found
//	              constant by qualified analysis were neither Identical
//	              nor Variable"),
//	Unknowable  — opaque instructions and instructions whose value
//	              derives from opaque sources on every path, which no
//	              constant propagator of this family can ever resolve,
//	Dynamic     — everything else.
//
// Categories are assigned per original instruction and weighted by the
// instruction's dynamic execution count under an evaluation profile.
package classify

import (
	"fmt"
	"strings"

	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/constprop"
	"pathflow/internal/profile"
)

// Category is one region of the Figure 13 Venn diagram.
type Category int

// The categories, in reporting order.
const (
	Local Category = iota
	Iterative
	Identical
	Variable
	Partial
	Unknowable
	Dynamic
	NumCategories
)

var catNames = [NumCategories]string{
	"Local", "Iterative", "Identical", "Variable", "Partial", "Unknowable", "Dynamic",
}

func (c Category) String() string {
	if c >= 0 && c < NumCategories {
		return catNames[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Report aggregates classification results for one function or a whole
// program.
type Report struct {
	// Dyn[c] is the dynamic instruction weight in category c.
	Dyn [NumCategories]int64
	// Static[c] is the static instruction count in category c.
	Static [NumCategories]int64
	// TotalDyn is the total dynamic instruction count.
	TotalDyn int64
}

// Add accumulates another report (for program-level totals).
func (r *Report) Add(o *Report) {
	for c := 0; c < int(NumCategories); c++ {
		r.Dyn[c] += o.Dyn[c]
		r.Static[c] += o.Static[c]
	}
	r.TotalDyn += o.TotalDyn
}

// Frac returns category c's fraction of dynamic instructions.
func (r *Report) Frac(c Category) float64 {
	if r.TotalDyn == 0 {
		return 0
	}
	return float64(r.Dyn[c]) / float64(r.TotalDyn)
}

// String renders the report as an aligned table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %15s %9s %8s\n", "category", "dynamic", "fraction", "static")
	for c := Category(0); c < NumCategories; c++ {
		fmt.Fprintf(&b, "%-11s %15d %8.2f%% %8d\n", c, r.Dyn[c], 100*r.Frac(c), r.Static[c])
	}
	return b.String()
}

// Input bundles everything needed to classify one function.
type Input struct {
	// Fn is the original function.
	Fn *cfg.Func
	// EvalProfile is the evaluation-run path profile on the original
	// graph (the paper uses the ref input's profile).
	EvalProfile *bl.Profile
	// OrigSol is Wegman-Zadek constant propagation on the original graph
	// (the CA = 0 baseline).
	OrigSol *constprop.Result
	// Overlay is the qualified graph (HPG or rHPG); OverlaySol is the
	// qualified analysis on it; OverlayOrigNode maps overlay nodes to
	// original vertices. They may all be nil, in which case only the
	// non-qualified categories are populated.
	Overlay         profile.Overlay
	OverlaySol      *constprop.Result
	OverlayOrigNode func(cfg.NodeID) cfg.NodeID
	// OverlayProfile is EvalProfile translated onto the overlay. When
	// set, a Partial instruction's dynamic weight is split per site:
	// instances executing at sites where the instruction is constant
	// count as Partial, the rest as Dynamic — a dynamic instance is
	// "constant" only where the duplicated graph makes it so. When nil,
	// the whole weight follows the instruction's category.
	OverlayProfile *bl.Profile
}

// Classify assigns every instruction of the function to its category.
func Classify(in Input) *Report {
	g := in.Fn.G
	numVars := in.Fn.NumVars()
	freq := profile.NodeFrequencies(in.EvalProfile, g)
	taint := SolveTaint(g, numVars)

	// Collect qualified values per original instruction across overlay
	// duplicates (reached ones only).
	var dupVals map[cfg.NodeID][]siteVals
	if in.Overlay != nil {
		og := in.Overlay.OverlayGraph()
		var ofreq []int64
		if in.OverlayProfile != nil {
			ofreq = profile.NodeFrequencies(in.OverlayProfile, og)
		}
		dupVals = map[cfg.NodeID][]siteVals{}
		for _, nd := range og.Nodes {
			ov := in.OverlayOrigNode(nd.ID)
			sv := dupVals[ov]
			if sv == nil {
				sv = make([]siteVals, len(nd.Instrs))
				dupVals[ov] = sv
			}
			if !in.OverlaySol.Reached(nd.ID) {
				continue
			}
			vals := in.OverlaySol.InstrValues(nd.ID)
			for i := range vals {
				sv[i].sites++
				if vals[i].IsConst() {
					sv[i].consts = append(sv[i].consts, vals[i])
					if ofreq != nil {
						sv[i].constFreq += ofreq[nd.ID]
					}
				} else {
					sv[i].unknown = true
				}
			}
		}
	}

	rep := &Report{}
	for _, nd := range g.Nodes {
		if len(nd.Instrs) == 0 {
			continue
		}
		local := constprop.LocalValues(g, nd.ID, numVars)
		iter := in.OrigSol.InstrValues(nd.ID)
		tainted := taint.InstrTainted(nd.ID)
		w := freq[nd.ID]
		for i := range nd.Instrs {
			instr := &nd.Instrs[i]
			var cat Category
			switch {
			case instr.Op.IsPure() && instr.HasDst() && local[i].IsConst():
				cat = Local
			case instr.Op.IsPure() && instr.HasDst() && iter[i].IsConst():
				cat = Iterative
			case dupVals != nil && qualifiedCategory(dupVals[nd.ID], i, instr.Op.IsPure() && instr.HasDst(), &cat):
				// cat set by qualifiedCategory
			case !instr.Op.IsPure() || !instr.HasDst() || tainted[i]:
				cat = Unknowable
			default:
				cat = Dynamic
			}
			rep.Static[cat]++
			rep.TotalDyn += w
			if cat == Partial && in.OverlayProfile != nil {
				// A Partial instruction is constant only where its site
				// makes it so; the remaining instances are dynamic.
				cw := dupVals[nd.ID][i].constFreq
				if cw > w {
					cw = w
				}
				rep.Dyn[Partial] += cw
				rep.Dyn[Dynamic] += w - cw
				continue
			}
			rep.Dyn[cat] += w
		}
	}
	return rep
}

// siteVals aggregates the qualified analysis' values of one instruction
// across its overlay duplicates.
type siteVals struct {
	consts    []constprop.Value // constant values observed at reached sites
	unknown   bool              // some reached site is non-constant
	sites     int               // number of reached sites
	constFreq int64             // dynamic executions at constant sites
}

// qualifiedCategory decides whether instruction i is constant at some
// qualified site and, if so, stores the precise category in *cat.
func qualifiedCategory(sites []siteVals, i int, eligible bool, cat *Category) bool {
	if !eligible || sites == nil || len(sites[i].consts) == 0 {
		return false
	}
	s := &sites[i]
	if s.unknown {
		*cat = Partial
		return true
	}
	first := s.consts[0]
	for _, v := range s.consts[1:] {
		if v.K != first.K {
			*cat = Variable
			return true
		}
	}
	*cat = Identical
	return true
}
