package classify

import (
	"pathflow/internal/cfg"
	"pathflow/internal/dataflow"
	"pathflow/internal/ir"
)

// Taint analysis estimates the paper's "Unknowable" set: a register is
// tainted at a program point if on *every* path reaching that point its
// value derives from an opaque source (input, arg, call) — such a value
// can never be proven constant by any constant propagator in this family,
// no matter how paths are qualified.
//
// The lattice per register is {maybe-clean ⊑ always-tainted} with meet =
// logical AND (a merge is tainted only if tainted on both sides). This is
// a second, independent client of the generic data-flow framework,
// demonstrating that path qualification's substrate is problem-agnostic.

// taintEnv is one fact: tainted[v] says register v is always-tainted.
type taintEnv []bool

// TaintResult is a solved taint problem.
type TaintResult struct {
	G   *cfg.Graph
	Sol *dataflow.Solution
	n   int
}

type taintProblem struct{ numVars int }

var _ dataflow.Problem = (*taintProblem)(nil)

func (p *taintProblem) Entry() dataflow.Fact {
	// All registers derive from "nothing" at entry: parameters come from
	// opaque call sites and other registers are unassigned, which the
	// constant propagator also treats as ⊥ — both are unknowable.
	e := make(taintEnv, p.numVars)
	for i := range e {
		e[i] = true
	}
	return e
}

func (p *taintProblem) Meet(a, b dataflow.Fact) dataflow.Fact {
	x, y := a.(taintEnv), b.(taintEnv)
	out := make(taintEnv, len(x))
	for i := range x {
		out[i] = x[i] && y[i]
	}
	return out
}

func (p *taintProblem) Equal(a, b dataflow.Fact) bool {
	x, y := a.(taintEnv), b.(taintEnv)
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func (p *taintProblem) Transfer(g *cfg.Graph, n cfg.NodeID, in dataflow.Fact, out []dataflow.Fact) {
	env := append(taintEnv(nil), in.(taintEnv)...)
	applyTaintBlock(g.Node(n), env, nil)
	for slot := range out {
		if slot == 0 {
			out[slot] = env
		} else {
			out[slot] = append(taintEnv(nil), env...)
		}
	}
}

// applyTaintBlock updates env over the block's instructions; when vals is
// non-nil it receives the taint of each instruction's result.
func applyTaintBlock(nd *cfg.Node, env taintEnv, vals []bool) {
	for i := range nd.Instrs {
		in := &nd.Instrs[i]
		var t bool
		switch {
		case in.Op == ir.Const:
			t = false
		case in.Op.Opaque():
			t = true
		case in.Op.IsUnary():
			t = env[in.A]
		case in.Op.IsBinary():
			t = env[in.A] || env[in.B]
		default: // Print, Nop
			t = true
		}
		if vals != nil {
			vals[i] = t
		}
		if in.HasDst() {
			env[in.Dst] = t
		}
	}
}

// SolveTaint runs the taint analysis over g.
func SolveTaint(g *cfg.Graph, numVars int) *TaintResult {
	p := &taintProblem{numVars: numVars}
	return &TaintResult{G: g, Sol: dataflow.Solve(g, p), n: numVars}
}

// InstrTainted reports, per instruction of node n, whether its result is
// always-tainted. Unreached nodes use the all-tainted environment (they
// can never contribute constants anyway).
func (t *TaintResult) InstrTainted(n cfg.NodeID) []bool {
	nd := t.G.Node(n)
	env := make(taintEnv, t.n)
	if t.Sol.Reached[n] {
		copy(env, t.Sol.In[n].(taintEnv))
	} else {
		for i := range env {
			env[i] = true
		}
	}
	vals := make([]bool, len(nd.Instrs))
	applyTaintBlock(nd, env, vals)
	return vals
}

// TaintedAt reports whether register v is always-tainted at n's entry.
func (t *TaintResult) TaintedAt(n cfg.NodeID, v ir.Var) bool {
	if !t.Sol.Reached[n] {
		return true
	}
	return t.Sol.In[n].(taintEnv)[v]
}
