// Benchmark harness: one testing.B benchmark per table and figure of
// Ammons & Larus (PLDI 1998). Each benchmark regenerates its experiment
// over the built-in SPEC95-analog suite, logs the rows the paper reports,
// and exports the headline quantities as benchmark metrics.
//
//	go test -bench=. -benchmem
//
// The same rows are printed by `go run ./cmd/pathflow exp all`.
package pathflow

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"pathflow/internal/automaton"
	"pathflow/internal/bench"
	"pathflow/internal/bl"
	"pathflow/internal/cfg"
	"pathflow/internal/classify"
	"pathflow/internal/constprop"
	"pathflow/internal/core"
	"pathflow/internal/dataflow/kernel"
	"pathflow/internal/engine"
	"pathflow/internal/fabric"
	"pathflow/internal/interp"
	"pathflow/internal/profile"
	"pathflow/internal/profile/stream"
	"pathflow/internal/serve"
	"pathflow/internal/trace"
	"pathflow/internal/tupling"
)

var benchCtx = context.Background()

var (
	suiteOnce sync.Once
	suiteIns  []*bench.Instance
	suiteErr  error
)

func suite(b *testing.B) []*bench.Instance {
	b.Helper()
	suiteOnce.Do(func() { suiteIns, suiteErr = bench.LoadAll(benchCtx, nil) })
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteIns
}

// BenchmarkTable1 regenerates Table 1: benchmark sizes, executed paths,
// hot paths at 97% coverage, and compile/analysis times.
func BenchmarkTable1(b *testing.B) {
	ins := suite(b)
	var rows []bench.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table1(benchCtx, ins)
		if err != nil {
			b.Fatal(err)
		}
	}
	totalPaths := 0
	for _, r := range rows {
		b.Logf("Table1 %-9s nodes=%5d paths=%5d hot@0.97=%4d compile=%v anal=%v",
			r.Name, r.Nodes, r.Paths, r.HotPaths, r.CompileTime.Round(time.Microsecond),
			r.AnalTime.Round(time.Microsecond))
		totalPaths += r.Paths
	}
	b.ReportMetric(float64(totalPaths), "paths")
}

// BenchmarkTable2 regenerates Table 2: modeled run time of the baseline
// versus the path-qualified program at CA=0.97, CR=0.95, including the
// built-in differential output check.
func BenchmarkTable2(b *testing.B) {
	ins := suite(b)
	var rows []bench.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table2(benchCtx, ins)
		if err != nil {
			b.Fatal(err)
		}
	}
	var best float64
	for _, r := range rows {
		b.Logf("Table2 %-9s base=%10d opt=%10d speedup=%+6.2f%% folds=%d/%d code=%d/%d",
			r.Name, r.BaseCycles, r.OptCycles, 100*r.Speedup,
			r.BaseFolded, r.OptFolded, r.BaseFootprint, r.OptFootprint)
		if r.Speedup > best {
			best = r.Speedup
		}
	}
	b.ReportMetric(100*best, "best-speedup-%")
}

// BenchmarkFig7 regenerates Figure 7: the cumulative distribution of
// dynamic non-local constant executions over basic blocks.
func BenchmarkFig7(b *testing.B) {
	ins := suite(b)
	var rows []bench.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig7(benchCtx, ins)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		need := func(f float64) int {
			for _, p := range r.Points {
				if p.Fraction >= f {
					return p.Blocks
				}
			}
			return 0
		}
		b.Logf("Fig7 %-9s blocks=%5d for50%%=%4d for90%%=%4d for99%%=%4d",
			r.Name, len(r.Points), need(0.5), need(0.9), need(0.99))
	}
}

// BenchmarkFig9 regenerates Figure 9: the increase in dynamic constant
// instructions versus path coverage, plus the non-local ratio headline.
func BenchmarkFig9(b *testing.B) {
	ins := suite(b)
	var pts []bench.Fig9Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.Fig9(benchCtx, ins, bench.CoverageLevels, 0.95)
		if err != nil {
			b.Fatal(err)
		}
	}
	var maxIncrease float64
	for _, p := range pts {
		b.Logf("Fig9 %-9s ca=%.4f increase=%+6.2f%% nonlocal-ratio=%6.1fx",
			p.Name, p.CA, 100*p.ConstIncrease, p.NonlocalRatio)
		if p.ConstIncrease > maxIncrease {
			maxIncrease = p.ConstIncrease
		}
	}
	b.ReportMetric(100*maxIncrease, "max-increase-%")
}

// BenchmarkFig10 regenerates Figure 10: the Figure 13 taxonomy of dynamic
// instructions at full coverage.
func BenchmarkFig10(b *testing.B) {
	ins := suite(b)
	var rows []bench.Fig10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig10(benchCtx, ins)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		line := fmt.Sprintf("Fig10 %-9s", r.Name)
		for c := classify.Category(0); c < classify.NumCategories; c++ {
			line += fmt.Sprintf(" %s=%.2f%%", c, 100*r.Report.Frac(c))
		}
		b.Log(line)
	}
}

// BenchmarkFig11 regenerates Figure 11: HPG and rHPG growth versus
// coverage.
func BenchmarkFig11(b *testing.B) {
	ins := suite(b)
	var pts []bench.Fig11Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.Fig11(benchCtx, ins, bench.CoverageLevels, 0.95)
		if err != nil {
			b.Fatal(err)
		}
	}
	var maxGrowth float64
	for _, p := range pts {
		b.Logf("Fig11 %-9s ca=%.4f hpg=%+7.1f%% rhpg=%+7.1f%%",
			p.Name, p.CA, 100*p.HPGGrowth, 100*p.RedGrowth)
		if p.HPGGrowth > maxGrowth {
			maxGrowth = p.HPGGrowth
		}
	}
	b.ReportMetric(100*maxGrowth, "max-hpg-growth-%")
}

// BenchmarkFig12 regenerates Figure 12: analysis cost versus coverage.
func BenchmarkFig12(b *testing.B) {
	ins := suite(b)
	var pts []bench.Fig12Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.Fig12(benchCtx, ins, bench.CoverageLevels, 0.95)
		if err != nil {
			b.Fatal(err)
		}
	}
	var maxIters float64
	for _, p := range pts {
		b.Logf("Fig12 %-9s ca=%.4f time=%5.2fx iters=%5.2fx", p.Name, p.CA, p.TimeRatio, p.Iterations)
		if p.Iterations > maxIters {
			maxIters = p.Iterations
		}
	}
	b.ReportMetric(maxIters, "max-iter-ratio")
}

// BenchmarkAblationCR sweeps the reduction benefit cutoff (DESIGN.md's
// reduction ablation): precision preserved vs reduced size.
func BenchmarkAblationCR(b *testing.B) {
	ins := suite(b)
	var pts []bench.CRPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.CRSweep(benchCtx, ins, []float64{0, 0.5, 0.9, 0.95, 1.0})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.Logf("CR %-9s cr=%.2f preserved=%6.1f%% nodes=%d", p.Name, p.CR, 100*p.Preserved, p.RedNodes)
	}
}

// BenchmarkAblationBranches measures decided branches (§7's
// Mueller-Whalley connection).
func BenchmarkAblationBranches(b *testing.B) {
	ins := suite(b)
	var rows []bench.BranchRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Branches(benchCtx, ins)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("Branches %-9s base=%d qualified=%d (sites %d -> %d)",
			r.Name, r.BaseDyn, r.QualDyn, r.BaseStatic, r.QualStatic)
	}
}

// BenchmarkAblationSigns measures the second data-flow client (§8).
func BenchmarkAblationSigns(b *testing.B) {
	ins := suite(b)
	var rows []bench.SignsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Signs(benchCtx, ins)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("Signs %-9s base=%d qualified=%d gain=%+.2f%%", r.Name, r.BaseDyn, r.QualDyn, 100*r.Gain)
	}
}

// BenchmarkFeasible regenerates the two-axis precision ablation behind
// `exp feasible`: per benchmark and client, the original CFG vertices
// whose facts are strictly improved by the frequency axis alone
// (unmasked reduced HPG), the feasibility axis alone (infeasible-edge
// pruning on the CFG, no profile), and the combined configuration —
// plus the correlation-detection and masked re-solve cost.
func BenchmarkFeasible(b *testing.B) {
	ins := suite(b)
	var rows []bench.FeasibleRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Feasible(benchCtx, ins)
		if err != nil {
			b.Fatal(err)
		}
	}
	var detect, solve time.Duration
	var freq, feas, both int
	for _, r := range rows {
		detect += r.DetectTime
		solve += r.SolveTime
		for _, c := range r.Clients {
			freq += c.FreqOnly
			feas += c.FeasOnly
			both += c.Both
			b.Logf("Feasible %-9s %-9s freq=%d feas=%d both=%d edges=%d/%d",
				r.Name, c.Client, c.FreqOnly, c.FeasOnly, c.Both, r.InfeasibleCFG, r.InfeasibleRed)
		}
	}
	b.ReportMetric(float64(freq), "freq-improved")
	b.ReportMetric(float64(feas), "feas-improved")
	b.ReportMetric(float64(both), "both-improved")
	b.ReportMetric(float64(detect.Milliseconds()), "detect-ms")
	b.ReportMetric(float64(solve.Milliseconds()), "masked-solve-ms")
}

// BenchmarkTracingVsTupling compares the two qualification methods of
// §4.3 on every benchmark function: Holley-Rosen data-flow tracing
// (expand the graph, then solve) versus context tupling (solve a tupled
// problem over the original graph). The paper reports tupling is no
// faster; this benchmark lets the reader check.
func BenchmarkTracingVsTupling(b *testing.B) {
	ins := suite(b)
	run := func(b *testing.B, tuple bool) {
		for i := 0; i < b.N; i++ {
			for _, in := range ins {
				for _, name := range in.Prog.Order {
					fn := in.Prog.Funcs[name]
					pr := in.Train.Funcs[name]
					if pr == nil || pr.NumPaths() == 0 {
						continue
					}
					hot := profile.SelectHot(pr, fn.G, 0.97)
					if len(hot) == 0 {
						continue
					}
					a, err := automaton.New(fn.G, pr.R, hot)
					if err != nil {
						b.Fatal(err)
					}
					if tuple {
						tupling.Analyze(fn.G, fn.NumVars(), a, true)
					} else {
						h, err := trace.Build(fn, a)
						if err != nil {
							b.Fatal(err)
						}
						constprop.Analyze(h.G, fn.NumVars(), true)
					}
				}
			}
		}
	}
	b.Run("tracing", func(b *testing.B) { run(b, false) })
	b.Run("tupling", func(b *testing.B) { run(b, true) })
}

// BenchmarkProfilers compares the two Ball-Larus profiler
// implementations' run-time overhead on the compress training run.
func BenchmarkProfilers(b *testing.B) {
	bm, err := bench.Get("compress")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := bm.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("none", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := interp.Run(prog, bm.TrainOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tracker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := bl.ProfileProgram(prog, bm.TrainOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ips := map[string]*bl.Instrumented{}
			for name, fn := range prog.Funcs {
				ip, err := bl.NewInstrumented(fn, bl.RecordingEdges(fn.G))
				if err != nil {
					b.Fatal(err)
				}
				ips[name] = ip
			}
			opts := bm.TrainOptions()
			opts.OnEnter = func(fn *cfg.Func) { ips[fn.Name].Enter() }
			opts.OnEdge = func(fn *cfg.Func, e cfg.EdgeID) { ips[fn.Name].Edge(e) }
			opts.OnExit = func(fn *cfg.Func) { ips[fn.Name].Exit() }
			if _, err := interp.Run(prog, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipeline measures the full per-benchmark pipeline (profile
// through reduction) at the paper's recommended parameters — the cost a
// compiler would pay to adopt the technique.
func BenchmarkPipeline(b *testing.B) {
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			prog, err := bm.Program()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				_, _, err := core.ProfileAndAnalyze(prog, bm.TrainOptions(), core.Options{CA: 0.97, CR: 0.95})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalysisOnly measures just the analysis stages (no training
// run) per benchmark, separating the cost Figure 12 charts.
func BenchmarkAnalysisOnly(b *testing.B) {
	ins := suite(b)
	for _, in := range ins {
		in := in
		b.Run(in.B.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.AnalyzeProgram(in.Prog, in.Train, core.Options{CA: 0.97, CR: 0.95})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSweep measures the engine's parameter-sweep cost under
// three configurations: the legacy-equivalent serial engine, bounded
// parallel scheduling across functions, and parallel scheduling plus the
// cross-run artifact cache (each iteration starts a cold cache, so the
// reported win is intra-sweep reuse only). The sweep is the harness's
// workload shape: every CA level at CR=0.95 (Figures 9/11/12), a CR
// sweep at CA=0.97 (the reduction ablation), and the recommended point
// once per ablation (Branches/Signs/Ranges/Propagation/EdgeSelection/CR
// all start from CA=0.97, CR=0.95).
//
// Compare with benchstat:
//
//	go test -run - -bench EngineSweep -count 10 | tee new.txt
//	benchstat old.txt new.txt
func BenchmarkEngineSweep(b *testing.B) {
	ins := suite(b)
	var opts []engine.Options
	for _, ca := range bench.CoverageLevels {
		opts = append(opts, engine.Options{CA: ca, CR: 0.95})
	}
	for cr := 0.0; cr <= 1.0; cr += 0.1 {
		opts = append(opts, engine.Options{CA: 0.97, CR: cr})
	}
	// The ablation suite re-analyzes the recommended point once per
	// ablation; repeats are where a cache shines brightest.
	for i := 0; i < 6; i++ {
		opts = append(opts, engine.DefaultOptions())
	}
	run := func(b *testing.B, cfg engine.Config) {
		for b.Loop() {
			eng := engine.New(cfg)
			for _, in := range ins {
				if _, err := eng.SweepProgram(benchCtx, in.Prog, in.Train, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, engine.Config{Workers: 1}) })
	b.Run("parallel", func(b *testing.B) { run(b, engine.Config{Workers: 0}) })
	b.Run("cached", func(b *testing.B) { run(b, engine.Config{Workers: 0, Cache: true}) })
}

// BenchmarkEngineWarmStart measures the persistent tier's replay win on
// the full-suite sweep (same workload as EngineSweep):
//
//   - cold: a fresh engine with an empty cache every iteration — every
//     artifact is computed from scratch.
//   - memwarm: one long-lived engine; after a priming sweep each
//     iteration replays entirely from the in-memory tier. The upper
//     bound for any warm start.
//   - diskwarm: a CacheDir is populated once; each iteration then models
//     a process restart by calling engine.Open on the directory with an
//     empty memory tier, so every artifact is read and decoded from
//     disk. The tentpole contract is diskwarm ≥ 2x faster than cold
//     (recorded in BENCH_warm_start.json).
//
// Compare with benchstat:
//
//	go test -run - -bench EngineWarmStart -count 10 | tee new.txt
//	benchstat old.txt new.txt
func BenchmarkEngineWarmStart(b *testing.B) {
	ins := suite(b)
	var opts []engine.Options
	for _, ca := range bench.CoverageLevels {
		opts = append(opts, engine.Options{CA: ca, CR: 0.95})
	}
	for cr := 0.0; cr <= 1.0; cr += 0.1 {
		opts = append(opts, engine.Options{CA: 0.97, CR: cr})
	}
	sweep := func(b *testing.B, eng *engine.Engine) {
		b.Helper()
		for _, in := range ins {
			if _, err := eng.SweepProgram(benchCtx, in.Prog, in.Train, opts); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("cold", func(b *testing.B) {
		for b.Loop() {
			sweep(b, engine.New(engine.Config{Workers: 1}))
		}
	})
	b.Run("memwarm", func(b *testing.B) {
		eng := engine.New(engine.Config{Workers: 1, Cache: true})
		sweep(b, eng) // prime outside the timed region (b.Loop resets)
		for b.Loop() {
			sweep(b, eng)
		}
	})
	b.Run("diskwarm", func(b *testing.B) {
		dir := b.TempDir()
		prime, err := engine.Open(engine.Config{Workers: 1, CacheDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		sweep(b, prime) // populate the directory, untimed
		for b.Loop() {
			eng, err := engine.Open(engine.Config{Workers: 1, CacheDir: dir})
			if err != nil {
				b.Fatal(err)
			}
			sweep(b, eng)
			st := eng.CacheStats()
			if st.Disk.Hits == 0 || st.Disk.Writes != 0 {
				b.Fatalf("disk-warm iteration not served from disk: %+v", st.Disk)
			}
		}
	})
}

// BenchmarkEngineIncremental measures the edit-analyze loop: one
// iteration walks the seven benchmarks in turn, applies a one-block
// body-only edit to a profiled function of that benchmark (an
// instruction constant moves; counts, shape and profile do not), and
// re-analyzes the whole suite at the recommended point — seven
// edit-then-reanalyze rounds per iteration, each with exactly one
// edited function in the workload.
//
//   - cold: a fresh engine with an empty cache — every round computes
//     every artifact of every program from scratch, the
//     pre-incremental cost of any edit.
//   - incremental: the cache is warmed with the *original* suite
//     (untimed, rebuilt every iteration so edited artifacts never
//     accumulate); the timed rounds re-analyze the suite with one
//     program swapped for its edited clone. The per-stage Merkle keys
//     replay the six untouched programs and every untouched function
//     of the edited one completely and, within the edited function,
//     replay select, automaton and translate (their input slices
//     exclude block bodies) — only baseline, trace, analyze and
//     reduce recompute.
//
// The tentpole contract — a body edit replays ≥ 3 stages of the edited
// function and the suite re-analysis is ≥ 3x faster than cold — is
// asserted here and recorded in BENCH_incremental.json.
//
// Compare with benchstat:
//
//	go test -run - -bench EngineIncremental -count 10 | tee new.txt
//	benchstat old.txt new.txt
func BenchmarkEngineIncremental(b *testing.B) {
	ins := suite(b)
	o := engine.DefaultOptions()

	// Build the edited variants: deep-clone each benchmark program
	// (Program() is memoized, so the original must stay untouched) and
	// bump an instruction constant in one of its profiled functions.
	edited := make([]*cfg.Program, len(ins))
	for i, in := range ins {
		prog := cfg.NewProgram()
		for _, name := range in.Prog.Order {
			prog.Add(in.Prog.Funcs[name].CloneFunc())
		}
		// Edit the least-profiled function that still qualifies: the
		// typical incremental workload is an edit to one modest function
		// of a large program, with the expensive hot functions untouched
		// (and hence fully replayed).
		target := ""
		best := int(^uint(0) >> 1)
		for _, name := range prog.Order {
			if pr := in.Train.Funcs[name]; pr != nil && pr.NumPaths() > 0 && pr.NumPaths() < best {
				target, best = name, pr.NumPaths()
			}
		}
		if target == "" {
			b.Fatalf("%s: no profiled function to edit", in.B.Name)
		}
		fn := prog.Funcs[target]
		edit := false
		for _, nd := range fn.G.Nodes {
			if len(nd.Instrs) > 0 {
				nd.Instrs[0].K++
				edit = true
				break
			}
		}
		if !edit {
			b.Fatalf("%s/%s: no instruction to edit", in.B.Name, target)
		}
		d := engine.DiffFunc(in.Prog.Funcs[target], fn, in.Train.Funcs[target], in.Train.Funcs[target])
		if d.Class != engine.DeltaBody {
			b.Fatalf("%s/%s: edit classified %q, want body (%s)", in.B.Name, target, d.Class, d)
		}
		edited[i] = prog
	}

	analyzeAll := func(b *testing.B, eng *engine.Engine, progs []*cfg.Program) {
		b.Helper()
		for i, in := range ins {
			if _, err := eng.AnalyzeProgram(benchCtx, progs[i], in.Train, o); err != nil {
				b.Fatal(err)
			}
		}
	}
	originals := make([]*cfg.Program, len(ins))
	for i, in := range ins {
		originals[i] = in.Prog
	}
	// round k of an iteration analyzes the suite with only benchmark k
	// swapped for its edited clone.
	mixed := func(k int) []*cfg.Program {
		progs := make([]*cfg.Program, len(ins))
		copy(progs, originals)
		progs[k] = edited[k]
		return progs
	}

	// Contract check (outside the timed runs): the edited functions
	// replay at least three pipeline stages on a warm cache.
	{
		eng := engine.New(engine.Config{Workers: 1, Cache: true})
		analyzeAll(b, eng, originals)
		for i, in := range ins {
			res, err := eng.AnalyzeProgram(benchCtx, edited[i], in.Train, o)
			if err != nil {
				b.Fatal(err)
			}
			for _, name := range edited[i].Order {
				if engine.FingerprintFunc(edited[i].Funcs[name]) == engine.FingerprintFunc(in.Prog.Funcs[name]) {
					continue // untouched function
				}
				replayed := 0
				for _, s := range engine.PipelineStages {
					if res.Funcs[name].Metrics.Stages[s].CacheHits > 0 {
						replayed++
					}
				}
				if res.Funcs[name].Qualified() && replayed < 3 {
					b.Fatalf("%s/%s: body edit replayed only %d stages, want >= 3", in.B.Name, name, replayed)
				}
			}
		}
	}

	b.Run("cold", func(b *testing.B) {
		eng := engine.New(engine.Config{Workers: 1})
		for b.Loop() {
			for k := range ins {
				analyzeAll(b, eng, mixed(k))
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng := engine.New(engine.Config{Workers: 1, Cache: true})
			analyzeAll(b, eng, originals) // warm with the pre-edit suite
			b.StartTimer()
			for k := range ins {
				analyzeAll(b, eng, mixed(k))
			}
		}
	})
}

// BenchmarkAnalyzeKernels compares the boxed reference solver against
// the packed SoA kernel on the largest analysis-tier HPGs of the suite
// (the graphs `pathflow exp` actually solves). Three configurations:
//
//	boxed    one boxed constprop solve per graph per iteration
//	packed   one packed solve per graph per iteration (includes domain
//	         construction and solution materialization)
//	resolve  Run() on pre-built packed solvers — the steady-state path
//	         the engine's hot loop pays for; must report 0 allocs/op
//	         (ci.sh greps for exactly that)
func BenchmarkAnalyzeKernels(b *testing.B) {
	ins := suite(b)
	var graphs []bench.AnalyzeGraph
	for _, in := range ins {
		gs, err := bench.AnalyzeGraphs(benchCtx, in)
		if err != nil {
			b.Fatal(err)
		}
		graphs = append(graphs, gs...)
	}
	sort.Slice(graphs, func(i, j int) bool { return graphs[i].G.NumNodes() > graphs[j].G.NumNodes() })
	if len(graphs) > 8 {
		graphs = graphs[:8]
	}
	nodes := 0
	for _, g := range graphs {
		nodes += g.G.NumNodes()
	}

	b.Run("boxed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, g := range graphs {
				constprop.Analyze(g.G, g.NumVars, true)
			}
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, g := range graphs {
				constprop.AnalyzePacked(g.G, g.NumVars, true)
			}
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
	b.Run("resolve", func(b *testing.B) {
		solvers := make([]*kernel.Solver, len(graphs))
		for i, g := range graphs {
			solvers[i] = constprop.PackedSolver(g.G, g.NumVars, true)
			solvers[i].Run() // warm: arenas sized before the timer starts
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, s := range solvers {
				s.Run()
			}
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
}

// BenchmarkAnalyzeSparse compares the solver schedules this PR's
// tentpole stacked on the packed kernels, steady state: Run() on
// pre-built solvers over each benchmark's analysis-tier graphs (the HPG
// of every qualified function). Three configurations per benchmark:
//
//	fifo-resolve    packed dense Run() on the FIFO worklist — the
//	                pre-upgrade baseline the speedup target is
//	                measured against
//	dense-resolve   packed dense Run() on the RPO priority worklist
//	                (the scheduling half of the upgrade alone)
//	sparse-resolve  sparse def-use Run(); must report 0 allocs/op
//	                (ci.sh greps for exactly that)
//
// The quantity BENCH_sparse.json tracks is the per-benchmark ratio
// fifo-resolve / sparse-resolve on the HPG-heaviest programs, where
// hot-path duplication multiplies transparent vertices and the sparse
// kernel's masked meets and pass-through pops skip the re-merging the
// dense flood pays for; dense-resolve / sparse-resolve isolates the
// sparsity win from the scheduling win.
func BenchmarkAnalyzeSparse(b *testing.B) {
	ins := suite(b)
	resolve := func(gs []bench.AnalyzeGraph, nodes int, build func(bench.AnalyzeGraph) *kernel.Solver) func(*testing.B) {
		return func(b *testing.B) {
			solvers := make([]*kernel.Solver, len(gs))
			for i, g := range gs {
				solvers[i] = build(g)
				solvers[i].Run() // warm: arenas sized before the timer starts
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, s := range solvers {
					s.Run()
				}
			}
			b.ReportMetric(float64(nodes), "nodes")
		}
	}
	for _, in := range ins {
		gs, err := bench.AnalyzeGraphs(benchCtx, in)
		if err != nil {
			b.Fatal(err)
		}
		nodes := 0
		for _, g := range gs {
			nodes += g.G.NumNodes()
		}
		b.Run(in.B.Name+"/fifo-resolve", resolve(gs, nodes, func(g bench.AnalyzeGraph) *kernel.Solver {
			s := constprop.PackedSolver(g.G, g.NumVars, true)
			s.SetFIFO()
			return s
		}))
		b.Run(in.B.Name+"/dense-resolve", resolve(gs, nodes, func(g bench.AnalyzeGraph) *kernel.Solver {
			return constprop.PackedSolver(g.G, g.NumVars, true)
		}))
		b.Run(in.B.Name+"/sparse-resolve", resolve(gs, nodes, func(g bench.AnalyzeGraph) *kernel.Solver {
			return constprop.SparseSolver(g.G, g.NumVars, true)
		}))
	}
}

// --- Sharded sweep ---------------------------------------------------------

// shardedSweepPoints is the per-benchmark grid BenchmarkShardedSweep
// fans out: three coverage points around the recommended one, so every
// function contributes three fabric tasks and the LPT scheduler has
// enough grain to balance.
var shardedSweepPoints = []serve.OptionsSpec{
	{CA: 0.95, CR: 0.95},
	{CA: 0.97, CR: 0.95},
	{CA: 0.99, CR: 0.95},
}

// runShardedSweep drives one cold distributed sweep of the full
// 7-benchmark suite through a fabric coordinator and nWorkers in-process
// workers (each with a private engine and cache, bridged only by the
// coordinator's bundle and profile endpoints). Returns the wall time and
// each worker's busy (task compute) time.
//
// The harness has one machine, so N concurrent workers would time-share
// the CPU and each task's wall-clock duration would absorb the other
// workers' slices — busy time would inflate ~N× and say nothing about
// fleet scaling. Instead the fleet is a discrete-event simulation over
// real work: one driver goroutine repeatedly picks the worker with the
// least accumulated busy time — the host whose clock reaches its next
// free moment first — and has it run one full fabric.Worker.Step
// (lease, compute, complete), timed uncontended. Lease order, affinity
// warm-up, and work stealing therefore unfold exactly as on N
// independent single-core hosts, and max-per-worker Σ busy is the
// fleet's makespan.
func runShardedSweep(b *testing.B, nWorkers int) (time.Duration, []time.Duration) {
	b.Helper()
	srv, err := serve.New(serve.Config{Workers: 1, MaxJobs: 8, Fabric: true, CacheDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Jobs().Shutdown()

	ctx, cancel := context.WithCancel(benchCtx)
	defer cancel()
	busy := make([]time.Duration, nWorkers)
	workers := make([]*fabric.Worker, nWorkers)
	for i := range workers {
		eng, err := engine.Open(engine.Config{Workers: 1, Cache: true, CacheDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		remote := fabric.NewRemoteCache(ctx, ts.URL, nil)
		eng.Disk().SetRemote(remote)
		workers[i] = &fabric.Worker{
			ID:   fmt.Sprintf("w%d", i),
			Base: ts.URL,
			Run:  serve.NewTaskRunner(eng).WithProfileExchange(remote).Run,
			Poll: 5 * time.Millisecond,
		}
	}
	driverDone := make(chan struct{})
	go func() {
		defer close(driverDone)
		for ctx.Err() == nil {
			next := 0
			for i := range busy {
				if busy[i] < busy[next] {
					next = i
				}
			}
			t0 := time.Now()
			ran, _, _ := workers[next].Step(ctx)
			if ran {
				busy[next] += time.Since(t0)
			} else {
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for _, bm := range bench.All() {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			body, err := json.Marshal(serve.SweepRequest{
				TargetSpec:  serve.TargetSpec{Program: name},
				Points:      shardedSweepPoints,
				Distributed: true,
			})
			if err != nil {
				b.Error(err)
				return
			}
			resp, err := http.Post(ts.URL+"/v1/sweep?wait=1", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			defer resp.Body.Close()
			var job struct {
				State string `json:"state"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK || job.State != "done" {
				b.Errorf("%s: sweep status %d, state %q", name, resp.StatusCode, job.State)
			}
		}(bm.Name)
	}
	wg.Wait()
	wall := time.Since(start)
	if os.Getenv("SHARDED_DEBUG") != "" {
		fmt.Fprintf(os.Stderr, "fleet=%d busy=%v\n", nWorkers, busy)
		resp, err := http.Get(ts.URL + "/metrics")
		if err == nil {
			io.Copy(os.Stderr, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}
	cancel()     // stop the driver loop
	<-driverDone // after which busy is quiescent
	return wall, busy
}

// BenchmarkShardedSweep measures the fabric's scheduling quality on the
// full suite at fleet sizes 1, 2 and 4. The harness runs on one machine
// (discrete-event fleet simulation; see runShardedSweep), so raw wall
// time cannot show fleet scaling; the fleet-scaling metric is the
// makespan — the maximum per-worker busy time, i.e. the wall time an
// N-host fleet would take for the same schedule. busy-ms (the summed
// compute) shows the sharding overhead: duplicated training runs and
// missed bundle reuse would appear as busy inflation over the 1-worker
// run.
//
// Each iteration runs all three fleet sizes back to back so they share
// one ambient-noise window, and per-config results keep the minimum
// over iterations — external CPU contention only ever adds time, so
// min is the noise-robust estimator for a deterministic workload.
func BenchmarkShardedSweep(b *testing.B) {
	fleets := []int{1, 2, 4}
	makespan := map[int]time.Duration{}
	busyTotal := map[int]time.Duration{}
	wallMin := map[int]time.Duration{}
	for i := 0; i < b.N; i++ {
		for _, n := range fleets {
			runtime.GC()
			wall, busies := runShardedSweep(b, n)
			var max, sum time.Duration
			for _, d := range busies {
				sum += d
				if d > max {
					max = d
				}
			}
			if cur, ok := makespan[n]; !ok || max < cur {
				makespan[n], busyTotal[n], wallMin[n] = max, sum, wall
			}
		}
	}
	for _, n := range fleets {
		b.ReportMetric(float64(makespan[n])/1e6, fmt.Sprintf("makespan-%dw-ms", n))
		b.ReportMetric(float64(busyTotal[n])/1e6, fmt.Sprintf("busy-%dw-ms", n))
		b.ReportMetric(float64(wallMin[n])/1e6, fmt.Sprintf("wall-%dw-ms", n))
	}
	b.ReportMetric(float64(makespan[1])/float64(makespan[2]), "speedup-2w")
	b.ReportMetric(float64(makespan[1])/float64(makespan[4]), "speedup-4w")
}

// BenchmarkStreamingDrift times the streaming ingest → drift → requalify
// loop against full cold re-analysis. One iteration walks the suite: for
// each benchmark, four hot-set-flipping counter batches land on a
// decaying accumulator set (stream.Set) and the program re-analyzes with
// every function under its classified delta.
//
//	cold   fresh engine per benchmark, every round recomputes the whole
//	       program against the live profile
//	drift  cache warmed (untimed) with the training profile; timed rounds
//	       replay every untouched function and recompute only the drifted
//	       function's StageSelect-downstream suffix
//
// The untimed contract check asserts exactly that split: in a drift
// round the untouched functions compute zero stages, and the drifted
// function replays its baseline stage (profile-clean) while recomputing
// select onward.
func BenchmarkStreamingDrift(b *testing.B) {
	ins := suite(b)
	o := engine.DefaultOptions()
	const rounds = 4

	// runRounds drives one benchmark's drift trajectory on eng: apply
	// the flip, materialize the live profile, diff, analyze per function
	// under its delta class. Returns the last round's per-function
	// results keyed by the round's drifted function.
	runRounds := func(b *testing.B, eng *engine.Engine, in *bench.Instance) (string, *engine.ProgramResult) {
		b.Helper()
		set := stream.NewSet(in.Prog, in.Train)
		prev := in.Train
		var lastFn string
		var lastRes *engine.ProgramResult
		for round := 1; round <= rounds; round++ {
			fn, path := bench.StreamFlipTarget(prev, in.Prog.Order)
			if fn == "" {
				b.Fatalf("%s: no multi-path function to drift", in.B.Name)
			}
			if _, err := set.Apply(&stream.Batch{Source: "bench", Funcs: []stream.FuncDelta{{
				Func: fn, Seq: uint64(round),
				Paths: []stream.PathDelta{{Path: path, Count: int64(10_000_000 * round)}},
			}}}); err != nil {
				b.Fatal(err)
			}
			live := set.Profile()
			deltas := engine.DiffPrograms(in.Prog, in.Prog, prev, live)
			byName := make(map[string]*engine.Delta, len(deltas))
			for _, d := range deltas {
				byName[d.Func] = d
			}
			res := &engine.ProgramResult{Prog: in.Prog, Opt: o, Funcs: map[string]*engine.FuncResult{}}
			for _, name := range in.Prog.Order {
				class := engine.DeltaCold
				if d := byName[name]; d != nil {
					class = d.Class
				}
				fr, err := eng.AnalyzeFunc(engine.WithDeltaClass(benchCtx, class), in.Prog.Funcs[name], live.Funcs[name], o)
				if err != nil {
					b.Fatal(err)
				}
				res.Funcs[name] = fr
			}
			prev, lastFn, lastRes = live, fn, res
		}
		return lastFn, lastRes
	}

	// Contract check (outside the timed runs): with a warm cache, a
	// drift round computes stages only in the drifted function, and even
	// there the baseline stage replays — the profile delta dirties
	// select onward, nothing upstream.
	for _, in := range ins {
		eng := engine.New(engine.Config{Workers: 1, Cache: true})
		if _, err := eng.AnalyzeProgram(benchCtx, in.Prog, in.Train, o); err != nil {
			b.Fatal(err)
		}
		drifted, res := runRounds(b, eng, in)
		for _, name := range in.Prog.Order {
			computed := 0
			for _, s := range engine.PipelineStages {
				sm := res.Funcs[name].Metrics.Stages[s]
				computed += sm.Runs - sm.CacheHits
			}
			if name != drifted && computed != 0 {
				b.Fatalf("%s/%s: untouched function computed %d stages in a drift round", in.B.Name, name, computed)
			}
		}
		fm := res.Funcs[drifted].Metrics.Stages
		if bs := fm[engine.StageBaseline]; bs.Runs != bs.CacheHits {
			b.Fatalf("%s/%s: drifted function recomputed baseline (profile deltas dirty select onward only)", in.B.Name, drifted)
		}
		if ss := fm[engine.StageSelect]; ss.Runs == ss.CacheHits {
			b.Fatalf("%s/%s: drifted function never recomputed select despite a flipped hot set", in.B.Name, drifted)
		}
	}

	b.Run("cold", func(b *testing.B) {
		for b.Loop() {
			for _, in := range ins {
				eng := engine.New(engine.Config{Workers: 1})
				runRounds(b, eng, in)
			}
		}
	})
	b.Run("drift", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			engines := make([]*engine.Engine, len(ins))
			for j, in := range ins {
				engines[j] = engine.New(engine.Config{Workers: 1, Cache: true})
				if _, err := engines[j].AnalyzeProgram(benchCtx, in.Prog, in.Train, o); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			for j, in := range ins {
				runRounds(b, engines[j], in)
			}
		}
	})
}
