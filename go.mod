module pathflow

go 1.22
