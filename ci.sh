#!/bin/sh
# ci.sh — the tier-1 verification gate for pathflow.
#
# Runs, in order:
#   1. go build ./...       every package compiles
#   2. gofmt -l             no unformatted files
#   3. go vet ./...         static checks
#   4. go test ./...        the full test suite (incl. the golden gate
#                           internal/bench/testdata/metrics.golden.json)
#   5. go test -race        the concurrency-bearing packages under the
#                           race detector (engine scheduler + two-tier
#                           cache — including the incremental
#                           differential test in internal/engine, so
#                           cold-vs-warm byte-identity holds under
#                           -race — the persistent diskcache store,
#                           the core compat shim, the bench harness
#                           memo, the serving layer's job manager +
#                           streams), plus the analysis clients and
#                           the oracle, which the engine runs from
#                           pooled workers (liveness, availexpr,
#                           dataflow/oracle) — and the solver layers
#                           themselves (dataflow, dataflow/kernel,
#                           constprop, intervals), whose packed-vs-boxed
#                           differential tests then hold under -race
#   6. fuzz smoke           10s of coverage-guided fuzzing per target
#                           (FuzzDiskcacheCodec: corrupt cache files
#                           never panic; FuzzDelta: dirty-set
#                           predictions stay sound on random edits;
#                           FuzzKernelEquivalence: the packed arena
#                           kernels match the boxed reference pointwise
#                           on full pipeline runs over random programs),
#                           seeded from testdata/fuzz corpora
#   7. kernel gate          BenchmarkAnalyzeKernels/resolve — the packed
#                           solvers' steady-state Run() loop — must
#                           report exactly 0 allocs/op (BENCH_kernels.json)
#   8. check smoke          `pathflow check` over examples/hotpath.pf
#                           and two benchmarks: the precision
#                           differential oracle must report zero
#                           violations (exit status is the gate)
#   9. baseline smoke       end-to-end incremental re-analysis:
#                           `analyze -baseline` on a one-block constant
#                           edit must classify the edited function as a
#                           body delta and replay >= 3 of its stages
#  10. serve smoke          end-to-end: start `pathflow serve` with a
#                           persistent -cachedir on an ephemeral port,
#                           run one analyze round-trip over HTTP, check
#                           /healthz, SIGINT-drain it — then restart the
#                           daemon on the same -cachedir and assert the
#                           repeat request warm-starts from disk
#                           (pathflow_diskcache_hits_total in /metrics)
#
# Exit status is nonzero on the first failure. See README.md ("Verifying").
set -e

echo "== build"
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== vet"
go vet ./...

echo "== test"
go test ./...

echo "== race"
go test -race ./internal/engine/ ./internal/engine/diskcache/ ./internal/core/ ./internal/bench/ ./internal/serve/ \
    ./internal/liveness/ ./internal/availexpr/ ./internal/dataflow/oracle/ \
    ./internal/dataflow/ ./internal/dataflow/kernel/ ./internal/constprop/ ./internal/intervals/

echo "== fuzz smoke"
# Short coverage-guided runs on top of the checked-in seed corpora: the
# codec must treat arbitrary bytes as at worst a silent cache miss,
# Delta's dirty-set prediction must stay sound on random program edits,
# and the packed kernels must stay pointwise identical to the boxed
# reference across full pipeline runs.
go test -run '^$' -fuzz '^FuzzDiskcacheCodec$' -fuzztime 10s ./internal/engine/diskcache/
go test -run '^$' -fuzz '^FuzzDelta$' -fuzztime 10s ./internal/engine/
go test -run '^$' -fuzz '^FuzzKernelEquivalence$' -fuzztime 10s ./internal/engine/

echo "== kernel gate"
# The packed kernels' steady-state loop must be allocation-free: every
# Run() on a pre-built solver re-solves entirely inside the arena. The
# resolve configuration must report exactly 0 allocs/op; any regression
# (an escaping row, a resized slice) fails the build.
kernels=$(go test -run '^$' -bench '^BenchmarkAnalyzeKernels$' -benchmem -benchtime 20x .)
echo "$kernels"
echo "$kernels" | grep -Eq 'AnalyzeKernels/resolve.*[^0-9]0 B/op[[:space:]]+0 allocs/op' || {
    echo "kernel gate: resolve path is not allocation-free" >&2; exit 1; }

tmpdir=$(mktemp -d)
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null
    rm -rf "$tmpdir"
}
trap cleanup EXIT
go build -o "$tmpdir/pathflow" ./cmd/pathflow

echo "== check smoke"
# The precision differential oracle must hold end-to-end: every
# constprop/interval/liveness/availexpr fact on the HPG and the rHPG is
# pointwise at least as precise as the CFG's. Non-zero exit on any
# violation.
"$tmpdir/pathflow" check -q -src examples/hotpath.pf -args 500 || {
    echo "check smoke: oracle violation in examples/hotpath.pf" >&2; exit 1; }
for b in compress m88ksim; do
    "$tmpdir/pathflow" check -q "$b" || {
        echo "check smoke: oracle violation in benchmark $b" >&2; exit 1; }
done

echo "== baseline smoke"
# Incremental re-analysis end to end: dump a benchmark's source, apply a
# one-block constant edit, and re-analyze against the original as the
# -baseline. The edited function must classify as a body delta that
# replays select/automaton/translate (3 stages) and recomputes 4.
"$tmpdir/pathflow" source li >"$tmpdir/li.pf"
sed 's/heap = 262144;/heap = 262145;/' "$tmpdir/li.pf" >"$tmpdir/edited.pf"
cmp -s "$tmpdir/li.pf" "$tmpdir/edited.pf" && {
    echo "baseline smoke: edit did not change the source" >&2; exit 1; }
"$tmpdir/pathflow" analyze -src "$tmpdir/edited.pf" -baseline "$tmpdir/li.pf" >"$tmpdir/incr.txt"
grep -Eq '^main +body +3 +4 +select,automaton,translate$' "$tmpdir/incr.txt" || {
    echo "baseline smoke: body edit did not replay select/automaton/translate" >&2
    cat "$tmpdir/incr.txt" >&2; exit 1; }
grep -Eq '^eval +none ' "$tmpdir/incr.txt" || {
    echo "baseline smoke: untouched function not classified as none" >&2
    cat "$tmpdir/incr.txt" >&2; exit 1; }

echo "== serve smoke"

# start_serve <logfile>: launch the daemon with the shared cache dir and
# set $serve_pid/$addr once it is listening.
start_serve() {
    "$tmpdir/pathflow" serve -addr 127.0.0.1:0 -cachedir "$tmpdir/cache" >"$1" 2>&1 &
    serve_pid=$!
    addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's|.*listening on http://||p' "$1")
        [ -n "$addr" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "serve smoke: daemon never listened" >&2
        cat "$1" >&2
        exit 1
    fi
}

# stop_serve <logfile>: SIGINT-drain the daemon and check clean exit.
stop_serve() {
    kill -INT "$serve_pid"
    wait "$serve_pid" || { echo "serve smoke: daemon exited nonzero" >&2; exit 1; }
    grep -q "drained, bye" "$1" || {
        echo "serve smoke: daemon did not drain cleanly" >&2
        cat "$1" >&2; exit 1; }
    serve_pid=""
}

start_serve "$tmpdir/serve.log"
curl -fsS "http://$addr/healthz" | grep -q '"status": "ok"' || {
    echo "serve smoke: /healthz not ok" >&2; exit 1; }
curl -fsS -X POST "http://$addr/v1/analyze?wait=1" \
    -H 'Content-Type: application/json' \
    -d '{"program": "compress"}' >"$tmpdir/job.json"
grep -q '"state": "done"' "$tmpdir/job.json" || {
    echo "serve smoke: analyze round-trip did not finish 'done'" >&2
    cat "$tmpdir/job.json" >&2; exit 1; }
grep -q '"qualified": true' "$tmpdir/job.json" || {
    echo "serve smoke: analysis result lost qualification" >&2; exit 1; }
# A repeated identical request must be served from the shared cache.
curl -fsS -X POST "http://$addr/v1/analyze?wait=1" \
    -H 'Content-Type: application/json' \
    -d '{"program": "compress"}' | grep -q '"profile_cached": true' || {
    echo "serve smoke: repeat request missed the shared cache" >&2; exit 1; }
stop_serve "$tmpdir/serve.log"

# Restart the daemon on the same -cachedir: the repeat request must
# warm-start from the persistent tier, visible both in the job metrics
# (stage_disk_hits) and the Prometheus disk-hit counter.
start_serve "$tmpdir/serve2.log"
curl -fsS -X POST "http://$addr/v1/analyze?wait=1" \
    -H 'Content-Type: application/json' \
    -d '{"program": "compress"}' >"$tmpdir/job2.json"
grep -q '"state": "done"' "$tmpdir/job2.json" || {
    echo "serve smoke: post-restart analyze did not finish 'done'" >&2
    cat "$tmpdir/job2.json" >&2; exit 1; }
grep -q '"stage_disk_hits"' "$tmpdir/job2.json" || {
    echo "serve smoke: restarted daemon recomputed instead of reading the cache dir" >&2
    cat "$tmpdir/job2.json" >&2; exit 1; }
curl -fsS "http://$addr/metrics" >"$tmpdir/metrics.txt"
hits=$(sed -n 's/^pathflow_diskcache_hits_total //p' "$tmpdir/metrics.txt")
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
    echo "serve smoke: pathflow_diskcache_hits_total is ${hits:-missing} after restart" >&2
    exit 1
fi
stop_serve "$tmpdir/serve2.log"

echo "ci.sh: all gates passed"
