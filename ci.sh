#!/bin/sh
# ci.sh — the tier-1 verification gate for pathflow.
#
# Runs, in order:
#   1. go build ./...       every package compiles
#   2. gofmt -l             no unformatted files
#   3. go vet ./...         static checks
#   4. lint                 the hand-rolled drift linter (internal/lint):
#                           Unknown*Error hints must enumerate the full
#                           current option sets (kernels, clients,
#                           benchmarks)
#   5. go test ./...        the full test suite (incl. the golden gate
#                           internal/bench/testdata/metrics.golden.json)
#   6. go test -race        the concurrency-bearing packages under the
#                           race detector (engine scheduler + two-tier
#                           cache — including the incremental
#                           differential test in internal/engine, so
#                           cold-vs-warm byte-identity holds under
#                           -race — the persistent diskcache store,
#                           the core compat shim, the bench harness
#                           memo, the serving layer's job manager +
#                           streams, the distributed fabric's queue +
#                           coordinator + worker loop, the streaming
#                           accumulator sets and the watch runner —
#                           including a concurrent ingest + sweep +
#                           live-analyze test against one server), plus the
#                           analysis clients and
#                           the oracle, which the engine runs from
#                           pooled workers (liveness, availexpr,
#                           dataflow/oracle) — and the solver layers
#                           themselves (dataflow, dataflow/kernel,
#                           constprop, intervals), whose packed-vs-boxed
#                           differential tests then hold under -race
#                           — and the feasibility detector + drift
#                           linter (feasible, lint), which the engine
#                           also runs from pooled workers
#   7. fuzz smoke           10s of coverage-guided fuzzing per target
#                           (FuzzDiskcacheCodec: corrupt cache files
#                           never panic; FuzzDelta: dirty-set
#                           predictions stay sound on random edits;
#                           FuzzKernelEquivalence: the packed and sparse
#                           arena kernels match the boxed reference on
#                           full pipeline runs over random programs —
#                           packed pointwise, sparse facts-only;
#                           FuzzFeasibleSoundness: no trace-observed
#                           edge is ever marked infeasible on random
#                           correlated-branch programs;
#                           FuzzAccumulatorMerge: the decaying
#                           accumulator algebra stays commutative/
#                           associative and Decay commutes with Merge
#                           on fuzzer-chosen ingestion histories;
#                           FuzzProfileDeltaCodec: arbitrary bytes
#                           thrown at delta batches and stream
#                           snapshot frames never panic or mutate a
#                           set on rejection),
#                           seeded from testdata/fuzz corpora
#   8. kernel gate          BenchmarkAnalyzeKernels/resolve — the packed
#                           solvers' steady-state Run() loop — must
#                           report exactly 0 allocs/op (BENCH_kernels.json);
#                           likewise BenchmarkAnalyzeSparse/sparse-resolve,
#                           the sparse def-use kernels' steady-state loop
#                           (BENCH_sparse.json)
#   9. check smoke          `pathflow check` over examples/hotpath.pf
#                           and two benchmarks: the precision
#                           differential oracle must report zero
#                           violations (exit status is the gate) — then
#                           `check -kernel=sparse` over all seven
#                           benchmarks, so the sparse kernels clear the
#                           same oracle end to end — then `check
#                           -feasible` over all seven (packed) plus
#                           boxed/sparse on m88ksim: the extended gate
#                           (masked facts pointwise >= unmasked on
#                           every tier, no executed edge pruned)
#  10. baseline smoke       end-to-end incremental re-analysis:
#                           `analyze -baseline` on a one-block constant
#                           edit must classify the edited function as a
#                           body delta and replay >= 3 of its stages
#  11. serve smoke          end-to-end: start `pathflow serve` with a
#                           persistent -cachedir on an ephemeral port,
#                           run one analyze round-trip over HTTP, check
#                           /healthz, SIGINT-drain it — then restart the
#                           daemon on the same -cachedir and assert the
#                           repeat request warm-starts from disk
#                           (pathflow_diskcache_hits_total in /metrics)
#  12. streaming smoke      streamed profile ingestion end-to-end: warm
#                           a daemon, POST a hot-set-flipping counter
#                           batch to /v1/profiles, require the ingest
#                           response to flag requalification and the
#                           drift counters to land in /metrics, then a
#                           live analyze must replay cached stages and
#                           its result bytes must equal a cold live
#                           analyze on a fresh daemon fed the same delta
#  13. watch smoke          `pathflow watch -rounds 1` on a dumped
#                           benchmark source: the one-block constant
#                           edit's round must classify the edited
#                           function as a body delta and replay
#                           untouched functions as 'none'
#  14. fabric smoke         distributed analysis end-to-end: a `serve
#                           -fabric` coordinator plus two `pathflow
#                           worker` processes (private cache dirs, so
#                           artifacts flow only through the coordinator's
#                           bundle exchange); a distributed sweep's
#                           result bytes must equal the same sweep run
#                           in-process, and SIGKILLing a worker mid-job
#                           must not lose it — the expired lease
#                           requeues its tasks on the survivor and the
#                           result bytes must still match
#
# Exit status is nonzero on the first failure. See README.md ("Verifying").
set -e

echo "== build"
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== vet"
go vet ./...

echo "== lint"
# Hand-rolled drift linter (internal/lint): every option name the
# engine's parsers accept must appear in the Unknown*Error hint the CLI
# and serving layer quote verbatim, and the benchmark hint must track
# the registry. Runs inside `go test ./...` too; this explicit early
# step fails the build before the slow suites when a hint drifts.
go test -count=1 ./internal/lint/

echo "== test"
go test ./...

echo "== race"
go test -race ./internal/engine/ ./internal/engine/diskcache/ ./internal/core/ ./internal/bench/ ./internal/serve/ \
    ./internal/fabric/ ./internal/profile/stream/ ./internal/watch/ \
    ./internal/liveness/ ./internal/availexpr/ ./internal/dataflow/oracle/ \
    ./internal/dataflow/ ./internal/dataflow/kernel/ ./internal/constprop/ ./internal/intervals/ \
    ./internal/feasible/ ./internal/lint/

echo "== fuzz smoke"
# Short coverage-guided runs on top of the checked-in seed corpora: the
# codec must treat arbitrary bytes as at worst a silent cache miss,
# Delta's dirty-set prediction must stay sound on random program edits,
# and the packed kernels must stay pointwise identical to the boxed
# reference across full pipeline runs.
go test -run '^$' -fuzz '^FuzzDiskcacheCodec$' -fuzztime 10s ./internal/engine/diskcache/
go test -run '^$' -fuzz '^FuzzDelta$' -fuzztime 10s ./internal/engine/
go test -run '^$' -fuzz '^FuzzKernelEquivalence$' -fuzztime 10s ./internal/engine/
# The branch-correlation detector must never prune an edge a real
# execution traverses, over programs biased toward correlated re-tests.
go test -run '^$' -fuzz '^FuzzFeasibleSoundness$' -fuzztime 10s ./internal/feasible/
# The streaming layer's two wire surfaces: the accumulator algebra must
# stay commutative/associative (and Decay/Merge must commute) on
# fuzzer-chosen ingestion histories, and arbitrary bytes thrown at the
# JSON delta batches and the diskcache snapshot frames must never panic,
# mutate a set on rejection, or decode to unstable state.
go test -run '^$' -fuzz '^FuzzAccumulatorMerge$' -fuzztime 10s ./internal/profile/stream/
go test -run '^$' -fuzz '^FuzzProfileDeltaCodec$' -fuzztime 10s ./internal/profile/stream/

echo "== kernel gate"
# The packed kernels' steady-state loop must be allocation-free: every
# Run() on a pre-built solver re-solves entirely inside the arena. The
# resolve configuration must report exactly 0 allocs/op; any regression
# (an escaping row, a resized slice) fails the build.
kernels=$(go test -run '^$' -bench '^BenchmarkAnalyzeKernels$' -benchmem -benchtime 20x .)
echo "$kernels"
echo "$kernels" | grep -Eq 'AnalyzeKernels/resolve.*[^0-9]0 B/op[[:space:]]+0 allocs/op' || {
    echo "kernel gate: resolve path is not allocation-free" >&2; exit 1; }
# Same bar for the sparse def-use kernels: their steady-state Run() —
# dirty bitsets, masked meets, the priority ring — must also stay inside
# the arena. Every sparse-resolve line must report exactly 0 allocs/op.
sparse=$(go test -run '^$' -bench '^BenchmarkAnalyzeSparse$' -benchmem -benchtime 20x .)
echo "$sparse"
sparse_lines=$(echo "$sparse" | grep -Ec 'AnalyzeSparse/.*/sparse-resolve')
sparse_clean=$(echo "$sparse" | grep -Ec 'AnalyzeSparse/.*/sparse-resolve.*[^0-9]0 B/op[[:space:]]+0 allocs/op')
if [ "$sparse_lines" -eq 0 ] || [ "$sparse_lines" -ne "$sparse_clean" ]; then
    echo "kernel gate: sparse-resolve path is not allocation-free" >&2; exit 1
fi

tmpdir=$(mktemp -d)
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null
    [ -n "$wa_pid" ] && kill "$wa_pid" 2>/dev/null
    [ -n "$wb_pid" ] && kill "$wb_pid" 2>/dev/null
    [ -n "$watch_pid" ] && kill "$watch_pid" 2>/dev/null
    rm -rf "$tmpdir"
}
trap cleanup EXIT
go build -o "$tmpdir/pathflow" ./cmd/pathflow

echo "== check smoke"
# The precision differential oracle must hold end-to-end: every
# constprop/interval/liveness/availexpr fact on the HPG and the rHPG is
# pointwise at least as precise as the CFG's. Non-zero exit on any
# violation.
"$tmpdir/pathflow" check -q -src examples/hotpath.pf -args 500 || {
    echo "check smoke: oracle violation in examples/hotpath.pf" >&2; exit 1; }
for b in compress m88ksim; do
    "$tmpdir/pathflow" check -q "$b" || {
        echo "check smoke: oracle violation in benchmark $b" >&2; exit 1; }
done
# The sparse kernels run the same precision oracle over every benchmark:
# def-use seeded propagation must land on exactly the facts the dense
# solve reaches, so the HPG/rHPG-vs-CFG differential holds unchanged.
for b in compress go ijpeg li m88ksim perl vortex; do
    "$tmpdir/pathflow" check -q -kernel=sparse "$b" || {
        echo "check smoke: oracle violation in benchmark $b (-kernel=sparse)" >&2; exit 1; }
done
# The feasibility axis runs its extended soundness gate over every
# benchmark: masked (infeasible-edge-pruned) facts pointwise at least
# as precise as unmasked on every tier, and no edge the training run
# executed marked infeasible. Once on the default packed kernels for
# the whole suite, then the other two backends on the benchmark with
# the most detected correlations (m88ksim) so all three kernels clear
# the masked solve end to end.
for b in compress go ijpeg li m88ksim perl vortex; do
    "$tmpdir/pathflow" check -q -feasible "$b" || {
        echo "check smoke: feasibility gate violation in benchmark $b" >&2; exit 1; }
done
for k in boxed sparse; do
    "$tmpdir/pathflow" check -q -feasible -kernel=$k m88ksim || {
        echo "check smoke: feasibility gate violation in m88ksim (-kernel=$k)" >&2; exit 1; }
done

echo "== baseline smoke"
# Incremental re-analysis end to end: dump a benchmark's source, apply a
# one-block constant edit, and re-analyze against the original as the
# -baseline. The edited function must classify as a body delta that
# replays select/automaton/translate (3 stages) and recomputes 4.
"$tmpdir/pathflow" source li >"$tmpdir/li.pf"
sed 's/heap = 262144;/heap = 262145;/' "$tmpdir/li.pf" >"$tmpdir/edited.pf"
cmp -s "$tmpdir/li.pf" "$tmpdir/edited.pf" && {
    echo "baseline smoke: edit did not change the source" >&2; exit 1; }
"$tmpdir/pathflow" analyze -src "$tmpdir/edited.pf" -baseline "$tmpdir/li.pf" >"$tmpdir/incr.txt"
grep -Eq '^main +body +3 +4 +select,automaton,translate$' "$tmpdir/incr.txt" || {
    echo "baseline smoke: body edit did not replay select/automaton/translate" >&2
    cat "$tmpdir/incr.txt" >&2; exit 1; }
grep -Eq '^eval +none ' "$tmpdir/incr.txt" || {
    echo "baseline smoke: untouched function not classified as none" >&2
    cat "$tmpdir/incr.txt" >&2; exit 1; }

echo "== serve smoke"

# start_serve <logfile> [flags...]: launch the daemon on an ephemeral
# port with the given extra flags and set $serve_pid/$addr once it is
# listening.
start_serve() {
    serve_log=$1
    shift
    "$tmpdir/pathflow" serve -addr 127.0.0.1:0 "$@" >"$serve_log" 2>&1 &
    serve_pid=$!
    addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's|.*listening on http://||p' "$serve_log")
        [ -n "$addr" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "serve smoke: daemon never listened" >&2
        cat "$serve_log" >&2
        exit 1
    fi
}

# stop_serve <logfile>: SIGINT-drain the daemon and check clean exit.
stop_serve() {
    kill -INT "$serve_pid"
    wait "$serve_pid" || { echo "serve smoke: daemon exited nonzero" >&2; exit 1; }
    grep -q "drained, bye" "$1" || {
        echo "serve smoke: daemon did not drain cleanly" >&2
        cat "$1" >&2; exit 1; }
    serve_pid=""
}

start_serve "$tmpdir/serve.log" -cachedir "$tmpdir/cache"
curl -fsS "http://$addr/healthz" | grep -q '"status": "ok"' || {
    echo "serve smoke: /healthz not ok" >&2; exit 1; }
curl -fsS -X POST "http://$addr/v1/analyze?wait=1" \
    -H 'Content-Type: application/json' \
    -d '{"program": "compress"}' >"$tmpdir/job.json"
grep -q '"state": "done"' "$tmpdir/job.json" || {
    echo "serve smoke: analyze round-trip did not finish 'done'" >&2
    cat "$tmpdir/job.json" >&2; exit 1; }
grep -q '"qualified": true' "$tmpdir/job.json" || {
    echo "serve smoke: analysis result lost qualification" >&2; exit 1; }
# A repeated identical request must be served from the shared cache.
curl -fsS -X POST "http://$addr/v1/analyze?wait=1" \
    -H 'Content-Type: application/json' \
    -d '{"program": "compress"}' | grep -q '"profile_cached": true' || {
    echo "serve smoke: repeat request missed the shared cache" >&2; exit 1; }
stop_serve "$tmpdir/serve.log"

# Restart the daemon on the same -cachedir: the repeat request must
# warm-start from the persistent tier, visible both in the job metrics
# (stage_disk_hits) and the Prometheus disk-hit counter.
start_serve "$tmpdir/serve2.log" -cachedir "$tmpdir/cache"
curl -fsS -X POST "http://$addr/v1/analyze?wait=1" \
    -H 'Content-Type: application/json' \
    -d '{"program": "compress"}' >"$tmpdir/job2.json"
grep -q '"state": "done"' "$tmpdir/job2.json" || {
    echo "serve smoke: post-restart analyze did not finish 'done'" >&2
    cat "$tmpdir/job2.json" >&2; exit 1; }
grep -q '"stage_disk_hits"' "$tmpdir/job2.json" || {
    echo "serve smoke: restarted daemon recomputed instead of reading the cache dir" >&2
    cat "$tmpdir/job2.json" >&2; exit 1; }
curl -fsS "http://$addr/metrics" >"$tmpdir/metrics.txt"
hits=$(sed -n 's/^pathflow_diskcache_hits_total //p' "$tmpdir/metrics.txt")
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
    echo "serve smoke: pathflow_diskcache_hits_total is ${hits:-missing} after restart" >&2
    exit 1
fi
stop_serve "$tmpdir/serve2.log"

# job_result <job json> <outfile>: follow a finished job to its
# deterministic result payload.
job_result() {
    jid=$(sed -n 's/.*"\(job_\)\{0,1\}id": "\([^"]*\)".*/\2/p' "$1" | head -n 1)
    [ -n "$jid" ] || { echo "smoke: no job id in $1" >&2; cat "$1" >&2; exit 1; }
    curl -fsS "http://$addr/v1/jobs/$jid/result" >"$2" || {
        echo "smoke: fetching result of $jid failed" >&2; exit 1; }
}

echo "== streaming smoke"
# Streaming ingestion end to end: warm a daemon's cache with a plain
# analyze, stream a hot-set-flipping counter batch into POST
# /v1/profiles, and require (a) the ingest response to flag the drifted
# function for requalification, (b) the drift counters to surface in
# /metrics, (c) the next live analyze to replay cached stages while
# recomputing the flipped function, and (d) its result bytes to equal a
# cold live analyze on a fresh daemon fed the same merged profile.
start_serve "$tmpdir/stream.log" -cachedir "$tmpdir/streamcache"
curl -fsS -X POST "http://$addr/v1/analyze?wait=1" -H 'Content-Type: application/json' \
    -d '{"program": "compress"}' >"$tmpdir/swarm.json"
grep -q '"state": "done"' "$tmpdir/swarm.json" || {
    echo "streaming smoke: warm analyze did not finish 'done'" >&2
    cat "$tmpdir/swarm.json" >&2; exit 1; }
# Pick the flip target from the live state: the coldest path (last in
# the hot->cold ordering) of a function with at least two trained paths.
curl -fsS "http://$addr/v1/profiles?program=compress" >"$tmpdir/sstate.json"
flip=$(sed -n 's/.*"func": "\([^"]*\)".*/F \1/p; s/.*"num_paths": \([0-9]*\).*/N \1/p; s/.*"path": "\([^"]*\)".*/P \1/p' "$tmpdir/sstate.json" |
    awk '$1=="F"{fn=$2; np=0} $1=="N"{np=$2} $1=="P" && np>=2 {f=fn; p=$2} END{print f, p}')
flip_fn=${flip% *}
flip_path=${flip#* }
[ -n "$flip_fn" ] && [ -n "$flip_path" ] || {
    echo "streaming smoke: no multi-path function in compress state" >&2
    cat "$tmpdir/sstate.json" >&2; exit 1; }
ingest="{\"program\": \"compress\", \"agent\": \"ci\", \"funcs\": [{\"func\": \"$flip_fn\", \"seq\": 1, \"paths\": [{\"path\": \"$flip_path\", \"count\": 50000000}]}]}"
curl -fsS -X POST "http://$addr/v1/profiles" -H 'Content-Type: application/json' \
    -d "$ingest" >"$tmpdir/singest.json"
grep -q '"applied": 1' "$tmpdir/singest.json" || {
    echo "streaming smoke: delta batch did not apply" >&2
    cat "$tmpdir/singest.json" >&2; exit 1; }
grep -q '"requalify": true' "$tmpdir/singest.json" || {
    echo "streaming smoke: hot-set flip not flagged for requalification" >&2
    cat "$tmpdir/singest.json" >&2; exit 1; }
curl -fsS "http://$addr/metrics" >"$tmpdir/smetrics.txt"
for counter in pathflow_profile_ingest_total pathflow_drift_requalify_total; do
    n=$(sed -n "s/^$counter //p" "$tmpdir/smetrics.txt")
    if [ -z "$n" ] || [ "$n" -eq 0 ]; then
        echo "streaming smoke: $counter is ${n:-missing} after ingest" >&2
        exit 1
    fi
done
curl -fsS -X POST "http://$addr/v1/analyze?wait=1" -H 'Content-Type: application/json' \
    -d '{"program": "compress", "live": true}' >"$tmpdir/slive.json"
grep -q '"state": "done"' "$tmpdir/slive.json" || {
    echo "streaming smoke: live analyze did not finish 'done'" >&2
    cat "$tmpdir/slive.json" >&2; exit 1; }
hits=$(sed -n 's/.*"stage_cache_hits": \([0-9]*\).*/\1/p' "$tmpdir/slive.json" | head -n 1)
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
    echo "streaming smoke: live analyze replayed no stages (stage_cache_hits ${hits:-missing})" >&2
    cat "$tmpdir/slive.json" >&2; exit 1
fi
job_result "$tmpdir/slive.json" "$tmpdir/slive_result.json"
stop_serve "$tmpdir/stream.log"
# Cold reference: a fresh daemon (empty cache dir) fed the same delta
# must produce byte-identical live-analysis results with nothing to
# replay — requalification changes cost, never answers.
start_serve "$tmpdir/stream2.log" -cachedir "$tmpdir/streamcache2"
curl -fsS -X POST "http://$addr/v1/profiles" -H 'Content-Type: application/json' \
    -d "$ingest" >"$tmpdir/singest2.json"
grep -q '"applied": 1' "$tmpdir/singest2.json" || {
    echo "streaming smoke: cold daemon rejected the delta batch" >&2
    cat "$tmpdir/singest2.json" >&2; exit 1; }
curl -fsS -X POST "http://$addr/v1/analyze?wait=1" -H 'Content-Type: application/json' \
    -d '{"program": "compress", "live": true}' >"$tmpdir/scold.json"
grep -q '"state": "done"' "$tmpdir/scold.json" || {
    echo "streaming smoke: cold live analyze did not finish 'done'" >&2
    cat "$tmpdir/scold.json" >&2; exit 1; }
job_result "$tmpdir/scold.json" "$tmpdir/scold_result.json"
cmp -s "$tmpdir/slive_result.json" "$tmpdir/scold_result.json" || {
    echo "streaming smoke: requalified result differs from cold live analysis" >&2
    diff "$tmpdir/slive_result.json" "$tmpdir/scold_result.json" >&2 || true; exit 1; }

echo "== watch smoke"
# Watch-mode continuous re-analysis end to end: start `pathflow watch`
# on a dumped benchmark source with -rounds 1, apply the baseline
# smoke's one-block constant edit while it polls, and require the edit
# round to classify the edited function as a body delta (recomputing
# stages) while an untouched function replays everything ('none').
"$tmpdir/pathflow" source li >"$tmpdir/watch.pf"
"$tmpdir/pathflow" watch -src "$tmpdir/watch.pf" -interval 100ms -rounds 1 >"$tmpdir/watch.txt" 2>&1 &
watch_pid=$!
i=0
while [ $i -lt 100 ]; do
    grep -q "^0 " "$tmpdir/watch.txt" && break
    sleep 0.1
    i=$((i + 1))
done
grep -q "^0 " "$tmpdir/watch.txt" || {
    echo "watch smoke: initial cold round never reported" >&2
    cat "$tmpdir/watch.txt" >&2; kill "$watch_pid" 2>/dev/null; exit 1; }
sed 's/heap = 262144;/heap = 262145;/' "$tmpdir/watch.pf" >"$tmpdir/watch_edit.pf"
mv "$tmpdir/watch_edit.pf" "$tmpdir/watch.pf"
wait "$watch_pid" || {
    echo "watch smoke: watch exited nonzero" >&2
    cat "$tmpdir/watch.txt" >&2; exit 1; }
grep -Eq '^1 +main +body ' "$tmpdir/watch.txt" || {
    echo "watch smoke: edit round did not classify main as a body delta" >&2
    cat "$tmpdir/watch.txt" >&2; exit 1; }
grep -Eq '^1 +[a-z]+ +none +- ' "$tmpdir/watch.txt" || {
    echo "watch smoke: no untouched function replayed as 'none'" >&2
    cat "$tmpdir/watch.txt" >&2; exit 1; }

echo "== fabric smoke"
# Distributed analysis end to end. The coordinator gets a short lease
# TTL so the worker-kill gate recovers in seconds; the workers get
# private cache dirs so every artifact they share travels through the
# coordinator's content-addressed bundle exchange, never a common
# filesystem.
start_serve "$tmpdir/fabric.log" -cachedir "$tmpdir/fabcache" -fabric -fabric-lease 2s

"$tmpdir/pathflow" worker -join "http://$addr" -id wA -cachedir "$tmpdir/wA" >"$tmpdir/wA.log" 2>&1 &
wa_pid=$!
"$tmpdir/pathflow" worker -join "http://$addr" -id wB -cachedir "$tmpdir/wB" >"$tmpdir/wB.log" 2>&1 &
wb_pid=$!

sweep1='"program": "compress", "points": [{"ca": 0.95, "cr": 0.95}, {"ca": 0.99, "cr": 0.95}]'

# Gate 1: byte-identity. The same sweep in-process on the server's own
# engine, then sharded over both workers — the result payloads must be
# byte-for-byte equal.
curl -fsS -X POST "http://$addr/v1/sweep?wait=1" -H 'Content-Type: application/json' \
    -d "{$sweep1}" >"$tmpdir/r1.json"
grep -q '"state": "done"' "$tmpdir/r1.json" || {
    echo "fabric smoke: in-process reference sweep did not finish 'done'" >&2
    cat "$tmpdir/r1.json" >&2; exit 1; }
job_result "$tmpdir/r1.json" "$tmpdir/r1_result.json"
curl -fsS -X POST "http://$addr/v1/sweep?wait=1" -H 'Content-Type: application/json' \
    -d "{$sweep1, \"distributed\": true}" >"$tmpdir/d1.json"
grep -q '"state": "done"' "$tmpdir/d1.json" || {
    echo "fabric smoke: distributed sweep did not finish 'done'" >&2
    cat "$tmpdir/d1.json" >&2
    cat "$tmpdir/wA.log" "$tmpdir/wB.log" >&2; exit 1; }
job_result "$tmpdir/d1.json" "$tmpdir/d1_result.json"
cmp -s "$tmpdir/r1_result.json" "$tmpdir/d1_result.json" || {
    echo "fabric smoke: distributed result differs from in-process result" >&2
    diff "$tmpdir/r1_result.json" "$tmpdir/d1_result.json" >&2 || true; exit 1; }

# Gate 2: worker-kill recovery. Shard a bigger sweep, SIGKILL one
# worker while it is in flight (no drain, no goodbye), and require the
# job to finish anyway — the dead worker's lease expires and its tasks
# requeue on the survivor — with bytes still identical to in-process.
sweep2='"program": "go", "points": [{"ca": 0.95, "cr": 0.95}, {"ca": 0.97, "cr": 0.95}, {"ca": 0.99, "cr": 0.95}]'
curl -fsS -X POST "http://$addr/v1/sweep" -H 'Content-Type: application/json' \
    -d "{$sweep2, \"distributed\": true}" >"$tmpdir/d2_submit.json"
sleep 0.3
kill -9 "$wb_pid" 2>/dev/null
wb_pid=""
d2_id=$(sed -n 's/.*"job_id": "\([^"]*\)".*/\1/p' "$tmpdir/d2_submit.json")
[ -n "$d2_id" ] || { echo "fabric smoke: no job id for kill-recovery sweep" >&2
    cat "$tmpdir/d2_submit.json" >&2; exit 1; }
i=0
while [ $i -lt 240 ]; do
    curl -fsS "http://$addr/v1/jobs/$d2_id" >"$tmpdir/d2.json"
    grep -q '"state": "done"' "$tmpdir/d2.json" && break
    if grep -q '"state": "failed"' "$tmpdir/d2.json"; then
        echo "fabric smoke: sweep failed after worker kill" >&2
        cat "$tmpdir/d2.json" >&2; exit 1
    fi
    sleep 0.5
    i=$((i + 1))
done
grep -q '"state": "done"' "$tmpdir/d2.json" || {
    echo "fabric smoke: sweep never finished after worker kill" >&2
    cat "$tmpdir/d2.json" >&2; cat "$tmpdir/wA.log" >&2; exit 1; }
job_result "$tmpdir/d2.json" "$tmpdir/d2_result.json"
curl -fsS -X POST "http://$addr/v1/sweep?wait=1" -H 'Content-Type: application/json' \
    -d "{$sweep2}" >"$tmpdir/r2.json"
grep -q '"state": "done"' "$tmpdir/r2.json" || {
    echo "fabric smoke: second in-process reference sweep did not finish 'done'" >&2
    cat "$tmpdir/r2.json" >&2; exit 1; }
job_result "$tmpdir/r2.json" "$tmpdir/r2_result.json"
cmp -s "$tmpdir/r2_result.json" "$tmpdir/d2_result.json" || {
    echo "fabric smoke: post-kill distributed result differs from in-process result" >&2
    diff "$tmpdir/r2_result.json" "$tmpdir/d2_result.json" >&2 || true; exit 1; }
# The fabric surfaced in /metrics: every completed task counted,
# whichever worker ended up running it.
curl -fsS "http://$addr/metrics" >"$tmpdir/fabric_metrics.txt"
done_n=$(sed -n 's/^pathflow_fabric_tasks_total{state="done"} //p' "$tmpdir/fabric_metrics.txt")
if [ -z "$done_n" ] || [ "$done_n" -eq 0 ]; then
    echo "fabric smoke: pathflow_fabric_tasks_total{state=\"done\"} is ${done_n:-missing}" >&2
    exit 1
fi

kill "$wa_pid" 2>/dev/null
wa_pid=""
stop_serve "$tmpdir/fabric.log"

echo "ci.sh: all gates passed"
