#!/bin/sh
# ci.sh — the tier-1 verification gate for pathflow.
#
# Runs, in order:
#   1. go build ./...       every package compiles
#   2. gofmt -l             no unformatted files
#   3. go vet ./...         static checks
#   4. go test ./...        the full test suite (incl. the golden gate
#                           internal/bench/testdata/metrics.golden.json)
#   5. go test -race        the concurrency-bearing packages under the
#                           race detector (engine scheduler + cache,
#                           the core compat shim, the bench harness memo,
#                           the serving layer's job manager + streams)
#   6. serve smoke          end-to-end: start `pathflow serve` on an
#                           ephemeral port, run one analyze round-trip
#                           over HTTP, check /healthz, SIGINT-drain it
#
# Exit status is nonzero on the first failure. See README.md ("Verifying").
set -e

echo "== build"
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== vet"
go vet ./...

echo "== test"
go test ./...

echo "== race"
go test -race ./internal/engine/ ./internal/core/ ./internal/bench/ ./internal/serve/

echo "== serve smoke"
tmpdir=$(mktemp -d)
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null
    rm -rf "$tmpdir"
}
trap cleanup EXIT
go build -o "$tmpdir/pathflow" ./cmd/pathflow
"$tmpdir/pathflow" serve -addr 127.0.0.1:0 >"$tmpdir/serve.log" 2>&1 &
serve_pid=$!
addr=""
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's|.*listening on http://||p' "$tmpdir/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "serve smoke: daemon never listened" >&2
    cat "$tmpdir/serve.log" >&2
    exit 1
fi
curl -fsS "http://$addr/healthz" | grep -q '"status": "ok"' || {
    echo "serve smoke: /healthz not ok" >&2; exit 1; }
curl -fsS -X POST "http://$addr/v1/analyze?wait=1" \
    -H 'Content-Type: application/json' \
    -d '{"program": "compress"}' >"$tmpdir/job.json"
grep -q '"state": "done"' "$tmpdir/job.json" || {
    echo "serve smoke: analyze round-trip did not finish 'done'" >&2
    cat "$tmpdir/job.json" >&2; exit 1; }
grep -q '"qualified": true' "$tmpdir/job.json" || {
    echo "serve smoke: analysis result lost qualification" >&2; exit 1; }
# A repeated identical request must be served from the shared cache.
curl -fsS -X POST "http://$addr/v1/analyze?wait=1" \
    -H 'Content-Type: application/json' \
    -d '{"program": "compress"}' | grep -q '"profile_cached": true' || {
    echo "serve smoke: repeat request missed the shared cache" >&2; exit 1; }
kill -INT "$serve_pid"
wait "$serve_pid" || { echo "serve smoke: daemon exited nonzero" >&2; exit 1; }
grep -q "drained, bye" "$tmpdir/serve.log" || {
    echo "serve smoke: daemon did not drain cleanly" >&2
    cat "$tmpdir/serve.log" >&2; exit 1; }
serve_pid=""

echo "ci.sh: all gates passed"
