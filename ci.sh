#!/bin/sh
# ci.sh — the tier-1 verification gate for pathflow.
#
# Runs, in order:
#   1. go build ./...       every package compiles
#   2. gofmt -l             no unformatted files
#   3. go vet ./...         static checks
#   4. go test ./...        the full test suite (incl. the golden gate
#                           internal/bench/testdata/metrics.golden.json)
#   5. go test -race        the concurrency-bearing packages under the
#                           race detector (engine scheduler + cache,
#                           the core compat shim, the bench harness memo)
#
# Exit status is nonzero on the first failure. See README.md ("Verifying").
set -e

echo "== build"
go build ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== vet"
go vet ./...

echo "== test"
go test ./...

echo "== race"
go test -race ./internal/engine/ ./internal/core/ ./internal/bench/

echo "ci.sh: all gates passed"
